//! Functional, concurrency, and recovery tests for the concurrent FPTree.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fptree_core::concurrent::{ConcurrentFPTree, ConcurrentFPTreeVar, ConcurrentTree};
use fptree_core::TreeConfig;
use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
use rand::prelude::*;

fn pool(mb: usize) -> Arc<PmemPool> {
    Arc::new(PmemPool::create(PoolOptions::direct(mb << 20)).unwrap())
}

fn small_cfg() -> TreeConfig {
    TreeConfig::fptree_concurrent()
        .with_leaf_capacity(4)
        .with_inner_fanout(4)
}

#[test]
fn single_thread_roundtrip() {
    let t = ConcurrentFPTree::create(pool(32), small_cfg(), ROOT_SLOT);
    for i in 0..2000u64 {
        assert!(t.insert(&i, i * 2), "insert {i}");
    }
    assert!(!t.insert(&0, 9));
    assert_eq!(t.len(), 2000);
    for i in 0..2000u64 {
        assert_eq!(t.get(&i), Some(i * 2));
    }
    assert_eq!(t.get(&99999), None);
    t.check_consistency().unwrap();
}

#[test]
fn single_thread_update_remove() {
    let t = ConcurrentFPTree::create(pool(32), small_cfg(), ROOT_SLOT);
    for i in 0..1000u64 {
        t.insert(&i, i);
    }
    for i in 0..1000u64 {
        assert!(t.update(&i, i + 7));
    }
    assert!(!t.update(&5000, 1));
    for i in (0..1000u64).step_by(2) {
        assert!(t.remove(&i));
    }
    assert!(!t.remove(&0));
    assert_eq!(t.len(), 500);
    for i in 0..1000u64 {
        assert_eq!(t.get(&i), (i % 2 == 1).then_some(i + 7));
    }
    t.check_consistency().unwrap();
    t.leak_audit().unwrap();
}

/// Regression: a buffered update of a slot-resident key must not make the
/// remove path think the leaf holds TWO live keys. With the raw
/// `count() + wbuf_count()` heuristic, removing the last distinct key took
/// the in-place path and left an empty leaf linked into the chain.
#[test]
fn remove_after_buffered_update_unlinks_dying_leaves() {
    let t = ConcurrentFPTree::create(pool(32), small_cfg().with_wbuf_entries(4), ROOT_SLOT);
    for i in 0..200u64 {
        assert!(t.insert(&i, i));
    }
    // Descending drain, updating each key just before its removal: when a
    // leaf is down to one distinct key, the update parks in the append
    // buffer over the key's slot — the exact state the dying check must
    // still count as ONE.
    for i in (0..200u64).rev() {
        assert!(t.update(&i, i + 1000));
        assert!(t.remove(&i), "remove {i}");
        t.check_consistency().unwrap();
    }
    assert!(t.is_empty());
    t.leak_audit().unwrap();
}

#[test]
fn range_scan_single_thread() {
    let t = ConcurrentFPTree::create(pool(32), small_cfg(), ROOT_SLOT);
    for i in (0..500u64).step_by(5) {
        t.insert(&i, i);
    }
    let r = t.range(&100, &200);
    let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
    let expect: Vec<u64> = (0..500)
        .step_by(5)
        .filter(|k| (100..=200).contains(k))
        .collect();
    assert_eq!(keys, expect);
}

#[test]
fn drain_and_refill() {
    let t = ConcurrentFPTree::create(pool(32), small_cfg(), ROOT_SLOT);
    for round in 0..3u64 {
        for i in 0..400u64 {
            assert!(t.insert(&i, i + round));
        }
        let mut order: Vec<u64> = (0..400).collect();
        order.shuffle(&mut StdRng::seed_from_u64(round));
        for i in order {
            assert!(t.remove(&i), "round {round} remove {i}");
        }
        assert!(t.is_empty());
        t.check_consistency().unwrap();
        t.leak_audit().unwrap();
    }
}

#[test]
fn var_keys_single_thread() {
    let cfg = TreeConfig::fptree_concurrent_var()
        .with_leaf_capacity(4)
        .with_inner_fanout(4);
    let t = ConcurrentFPTreeVar::create(pool(64), cfg, ROOT_SLOT);
    for i in 0..600u64 {
        assert!(t.insert(&format!("user:{i:05}").into_bytes(), i));
    }
    for i in 0..600u64 {
        assert_eq!(t.get(&format!("user:{i:05}").into_bytes()), Some(i));
    }
    for i in (0..600u64).step_by(3) {
        assert!(t.remove(&format!("user:{i:05}").into_bytes()));
    }
    t.check_consistency().unwrap();
    t.leak_audit().unwrap();
}

#[test]
fn concurrent_inserts_disjoint_ranges() {
    let t = Arc::new(ConcurrentFPTree::create(pool(128), small_cfg(), ROOT_SLOT));
    let threads = 8;
    let per = 2000u64;
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let base = tid as u64 * per;
                for i in 0..per {
                    assert!(t.insert(&(base + i), base + i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(t.len(), threads as usize * per as usize);
    for k in 0..threads as u64 * per {
        assert_eq!(t.get(&k), Some(k), "key {k}");
    }
    t.check_consistency().unwrap();
}

#[test]
fn concurrent_mixed_workload_with_verification() {
    // Each thread owns a key stripe (key % threads == tid) and maintains a
    // local model; cross-thread reads happen constantly via get.
    let t = Arc::new(ConcurrentFPTree::create(pool(128), small_cfg(), ROOT_SLOT));
    let threads = 8u64;
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid);
                let mut model = std::collections::HashMap::new();
                for op in 0..4000 {
                    let key = tid + threads * rng.gen_range(0..500);
                    match op % 4 {
                        0 => {
                            let inserted = t.insert(&key, key + 1);
                            assert_eq!(
                                inserted,
                                !model.contains_key(&key),
                                "insert {key} disagreed with model"
                            );
                            model.entry(key).or_insert(key + 1);
                        }
                        1 => {
                            let v = key + 2;
                            let updated = t.update(&key, v);
                            assert_eq!(updated, model.contains_key(&key));
                            if updated {
                                model.insert(key, v);
                            }
                        }
                        2 => {
                            let removed = t.remove(&key);
                            assert_eq!(removed, model.remove(&key).is_some());
                        }
                        _ => {
                            assert_eq!(t.get(&key), model.get(&key).copied(), "get {key}");
                            // Read someone else's stripe too (no assertion
                            // on value, just must not crash or hang).
                            let other = (key + 1) % (threads * 500);
                            let _ = t.get(&other);
                        }
                    }
                }
                model
            })
        })
        .collect();
    let mut expected = std::collections::HashMap::new();
    for h in handles {
        expected.extend(h.join().unwrap());
    }
    assert_eq!(t.len(), expected.len());
    for (k, v) in &expected {
        assert_eq!(t.get(k), Some(*v), "final check key {k}");
    }
    t.check_consistency().unwrap();
    t.leak_audit().unwrap();
}

#[test]
fn concurrent_readers_during_writes_never_see_garbage() {
    let t = Arc::new(ConcurrentFPTree::create(pool(128), small_cfg(), ROOT_SLOT));
    // Values are always key*10+generation; readers must only ever observe
    // such values.
    let stop = Arc::new(AtomicU64::new(0));
    let writer = {
        let (t, stop) = (Arc::clone(&t), Arc::clone(&stop));
        std::thread::spawn(move || {
            for generation in 0..40u64 {
                for k in 0..500u64 {
                    if generation == 0 {
                        t.insert(&k, k * 100);
                    } else {
                        t.update(&k, k * 100 + generation);
                    }
                }
            }
            stop.store(1, Ordering::Release);
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let (t, stop) = (Arc::clone(&t), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while stop.load(Ordering::Acquire) == 0 {
                    let k = reads % 500;
                    if let Some(v) = t.get(&k) {
                        assert_eq!(v / 100, k, "torn value {v} for key {k}");
                        assert!(v % 100 < 40, "impossible generation in {v}");
                    }
                    reads += 1;
                }
                reads
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    t.check_consistency().unwrap();
}

#[test]
fn concurrent_var_key_stress() {
    let cfg = TreeConfig::fptree_concurrent_var()
        .with_leaf_capacity(8)
        .with_inner_fanout(8);
    let t = Arc::new(ConcurrentFPTreeVar::create(pool(256), cfg, ROOT_SLOT));
    let threads = 6u64;
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..1500u64 {
                    let key = format!("t{tid}:{i:05}").into_bytes();
                    assert!(t.insert(&key, i));
                    if i % 3 == 0 {
                        assert!(t.update(&key, i + 1));
                    }
                    if i % 5 == 0 {
                        assert!(t.remove(&key));
                    }
                    // Constant cross-stripe reads.
                    let other = format!("t{}:{:05}", (tid + 1) % threads, i / 2).into_bytes();
                    let _ = t.get(&other);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    t.check_consistency().unwrap();
    t.leak_audit().unwrap();
}

#[test]
fn recovery_after_clean_shutdown() {
    let p = Arc::new(PmemPool::create(PoolOptions::tracked(64 << 20)).unwrap());
    let t = ConcurrentFPTree::create(Arc::clone(&p), small_cfg(), ROOT_SLOT);
    for i in 0..800u64 {
        t.insert(&i, i * 3);
    }
    for i in (0..800u64).step_by(4) {
        t.remove(&i);
    }
    let n = t.len();
    drop(t);
    let img = p.clean_image();
    let p2 = Arc::new(PmemPool::reopen(img, PoolOptions::tracked(0)).unwrap());
    let t2 = ConcurrentFPTree::open(Arc::clone(&p2), ROOT_SLOT).expect("recover");
    assert_eq!(t2.len(), n);
    for i in 0..800u64 {
        assert_eq!(t2.get(&i), (i % 4 != 0).then_some(i * 3));
    }
    t2.check_consistency().unwrap();
    t2.leak_audit().unwrap();
}

#[test]
fn crash_recovery_concurrent_tree() {
    // Crash injection on the concurrent tree run single-threaded (the crash
    // fuse panics whichever thread trips it; single-threaded keeps the
    // test deterministic).
    for fuse in (0..120u64).step_by(3) {
        let p = Arc::new(PmemPool::create(PoolOptions::tracked(64 << 20)).unwrap());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let t = ConcurrentFPTree::create(Arc::clone(&p), small_cfg(), ROOT_SLOT);
            p.set_crash_fuse(Some(100 + fuse * 11));
            for i in 0..60u64 {
                t.insert(&i, i);
            }
            for i in (0..60u64).step_by(3) {
                t.remove(&i);
            }
            for i in (1..60u64).step_by(3) {
                t.update(&i, i + 100);
            }
        }));
        p.set_crash_fuse(None);
        if result.is_ok() {
            continue;
        }
        assert!(fptree_pmem::crash_is_injected(result.unwrap_err().as_ref()));
        for seed in [5u64, 23] {
            let img = p.crash_image(seed);
            let p2 = Arc::new(PmemPool::reopen(img, PoolOptions::tracked(0)).unwrap());
            let t2 = ConcurrentFPTree::open(Arc::clone(&p2), ROOT_SLOT).expect("recover");
            t2.check_consistency()
                .unwrap_or_else(|e| panic!("fuse {fuse} seed {seed}: {e}"));
            // Values must remain bound to their keys.
            for (k, v) in t2.range(&0, &1000) {
                assert!(
                    v == k || v == k + 100,
                    "fuse {fuse}: key {k} has foreign value {v}"
                );
            }
        }
    }
}

#[test]
fn htm_stats_report_fallbacks_under_contention() {
    let t = Arc::new(ConcurrentFPTree::create(pool(64), small_cfg(), ROOT_SLOT));
    // Hammer a single leaf from many threads to force aborts.
    let handles: Vec<_> = (0..8)
        .map(|tid: u64| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..2000u64 {
                    if tid.is_multiple_of(2) {
                        // Growing keyspace guarantees splits, hence
                        // exclusive-lock acquisitions.
                        t.insert(&(tid * 10_000 + i), i);
                        if i.is_multiple_of(3) {
                            t.remove(&(tid * 10_000 + i));
                        }
                    } else {
                        let _ = t.get(&(i % 64));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let (attempts, _aborts, _fallbacks, writes) = t.htm_stats();
    assert!(attempts > 0);
    assert!(writes > 0, "structural ops must have taken the lock");
}

/// Generic helper used by both key kinds to test open() key-kind mismatch.
#[test]
fn open_checks_key_kind() {
    let p = Arc::new(PmemPool::create(PoolOptions::tracked(32 << 20)).unwrap());
    let t = ConcurrentFPTree::create(Arc::clone(&p), small_cfg(), ROOT_SLOT);
    drop(t);
    let img = p.clean_image();
    let p2 = Arc::new(PmemPool::reopen(img, PoolOptions::tracked(0)).unwrap());
    let r = ConcurrentTree::<fptree_core::VarKey>::open(p2, ROOT_SLOT);
    assert!(matches!(r, Err(fptree_core::Error::Corrupt { .. })));
}

/// The single-threaded and concurrent trees must agree on semantics.
#[test]
fn agrees_with_single_threaded_tree() {
    let pc = pool(64);
    let ps = pool(64);
    let tc = ConcurrentFPTree::create(pc, small_cfg(), ROOT_SLOT);
    let mut ts = fptree_core::FPTree::create(
        ps,
        TreeConfig::fptree()
            .with_leaf_capacity(4)
            .with_inner_fanout(4),
        ROOT_SLOT,
    );
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5000 {
        let k = rng.gen_range(0..800u64);
        match rng.gen_range(0..4) {
            0 => assert_eq!(tc.insert(&k, k), ts.insert(&k, k)),
            1 => assert_eq!(tc.update(&k, k + 1), ts.update(&k, k + 1)),
            2 => assert_eq!(tc.remove(&k), ts.remove(&k)),
            _ => assert_eq!(tc.get(&k), ts.get(&k)),
        }
    }
    assert_eq!(tc.len(), ts.len());
    tc.check_consistency().unwrap();
    ts.check_consistency().unwrap();
}
