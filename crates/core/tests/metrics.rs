//! Metrics-oracle integration tests: exact counter values against a known
//! single-threaded workload, sum-consistency across 8 threads, and the
//! snapshot's JSON serialization round-tripped through a real tree.
//!
//! Every test runs under both feature configurations: with `metrics` (the
//! default) the oracle values must match exactly; with
//! `--no-default-features` every counter must read zero while the field
//! names stay present (the API contract that lets dashboards keep their
//! queries regardless of the build).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fptree_core::keys::FixedKey;
use fptree_core::{ConcurrentFPTree, Metrics, SingleTree, TreeConfig};
use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};

fn pool(mb: usize) -> Arc<PmemPool> {
    Arc::new(PmemPool::create(PoolOptions::direct(mb << 20)).expect("pool"))
}

/// Exact per-op and outcome counters for a fixed single-threaded workload.
#[test]
fn single_threaded_counter_oracle() {
    let mut t = SingleTree::<FixedKey>::create(pool(64), TreeConfig::fptree(), ROOT_SLOT);
    for k in 0..100u64 {
        t.insert(&k, k);
    }
    for k in 0..10u64 {
        t.insert(&k, k); // already present
    }
    for k in 0..100u64 {
        assert!(t.get(&k).is_some());
    }
    for k in 1000..1020u64 {
        assert!(t.get(&k).is_none());
    }
    for k in 0..50u64 {
        t.update(&k, k + 1);
    }
    for k in 1000..1005u64 {
        t.update(&k, 0); // absent
    }
    for k in 0..10u64 {
        t.remove(&k);
    }
    for k in 1000..1003u64 {
        t.remove(&k); // absent
    }
    let scanned = t.scan(20..40).count();
    assert_eq!(scanned, 20);

    let s = t.metrics_snapshot();
    let v = |name: &str| s.get(name).unwrap_or_else(|| panic!("missing {name}"));

    if Metrics::enabled() {
        assert_eq!(v("insert_ops"), 110);
        assert_eq!(v("insert_existing"), 10);
        assert_eq!(v("get_ops"), 120);
        assert_eq!(v("get_hits"), 100);
        assert_eq!(v("get_misses"), 20);
        assert_eq!(v("update_ops"), 55);
        assert_eq!(v("update_misses"), 5);
        assert_eq!(v("remove_ops"), 13);
        assert_eq!(v("remove_misses"), 3);
        assert_eq!(v("scan_ops"), 1);
        assert_eq!(v("scan_seeks"), 1);
        assert_eq!(v("scan_entries"), 20);
        // 100 keys overflow the first leaf: every split allocates a leaf,
        // plus the one allocated at creation.
        assert!(v("leaf_splits") >= 1);
        assert_eq!(v("leaf_allocs"), v("leaf_splits") + 1);
        // Latency sampling (1-in-8) never exceeds the op count.
        assert!(v("get_lat_samples") <= v("get_ops"));
        // The pool's counters ride along in the same snapshot.
        assert!(v("pmem_allocs") >= 1);
    } else {
        // Compiled out: fields exist, every tree counter reads zero.
        for name in [
            "insert_ops",
            "get_ops",
            "get_hits",
            "get_misses",
            "leaf_splits",
            "scan_entries",
        ] {
            assert_eq!(v(name), 0, "{name} should be zero with metrics off");
        }
    }
    // Per-detector dynamic-checker counters ride along in every snapshot
    // (all zero here: the durability checker is disabled for this pool).
    for name in [
        "pmem_checker_missing_flush",
        "pmem_checker_unordered_publish",
        "pmem_checker_torn_publish",
        "pmem_checker_unpublished_multi_word",
    ] {
        assert_eq!(v(name), 0, "{name} must be exported in the snapshot");
    }
}

/// Shard summation: 8 threads hammer a concurrent tree; totals must equal
/// the issued op counts and outcome counters must partition them.
#[test]
fn eight_thread_sum_consistency() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1_000;
    let t = ConcurrentFPTree::create(pool(64), TreeConfig::fptree_concurrent(), ROOT_SLOT);
    let hits = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..THREADS {
            let t = &t;
            let hits = &hits;
            s.spawn(move || {
                let base = w * PER_THREAD;
                for k in base..base + PER_THREAD {
                    t.insert(&k, k);
                }
                let mut local = 0;
                for k in base..base + PER_THREAD {
                    // Roughly half the probes land outside the inserted
                    // range, so both hit and miss paths are exercised.
                    if t.get(&(k * 2)).is_some() {
                        local += 1;
                    }
                }
                hits.fetch_add(local, Ordering::Relaxed);
            });
        }
    });

    let s = t.metrics_snapshot();
    let v = |name: &str| s.get(name).unwrap_or_else(|| panic!("missing {name}"));
    if Metrics::enabled() {
        assert_eq!(v("insert_ops"), THREADS * PER_THREAD);
        assert_eq!(v("get_ops"), THREADS * PER_THREAD);
        assert_eq!(v("get_hits") + v("get_misses"), THREADS * PER_THREAD);
        assert_eq!(v("get_hits"), hits.load(Ordering::Relaxed) as u64);
        assert_eq!(v("leaf_allocs"), v("leaf_splits") + 1);
    } else {
        assert_eq!(v("insert_ops"), 0);
        assert_eq!(v("get_ops"), 0);
    }
}

/// `reset` zeroes every shard; the next snapshot starts from scratch.
#[test]
fn reset_clears_all_shards() {
    let t = ConcurrentFPTree::create(pool(64), TreeConfig::fptree_concurrent(), ROOT_SLOT);
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let t = &t;
            s.spawn(move || {
                for k in 0..100u64 {
                    t.insert(&(w * 1000 + k), k);
                }
            });
        }
    });
    t.metrics().reset();
    let s = t.metrics().snapshot();
    assert_eq!(s.get("insert_ops"), Some(0));
    assert_eq!(s.get("leaf_allocs"), Some(0));
    t.insert(&u64::MAX, 1);
    let s = t.metrics().snapshot();
    if Metrics::enabled() {
        assert_eq!(s.get("insert_ops"), Some(1));
    }
}

/// A real tree snapshot (tree + pmem fields) survives the JSON round trip:
/// every field appears exactly once with its value.
#[test]
fn tree_snapshot_json_round_trip() {
    let mut t = SingleTree::<FixedKey>::create(pool(64), TreeConfig::fptree(), ROOT_SLOT);
    for k in 0..200u64 {
        t.insert(&k, k);
    }
    let s = t.metrics_snapshot();
    let json = s.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    // Flat object of integer fields: parse it back by hand.
    let inner = &json[1..json.len() - 1];
    let mut parsed = Vec::new();
    for pair in inner.split(',') {
        let (name, value) = pair.split_once(':').expect("name:value");
        let name = name.trim_matches('"');
        let value: u64 = value.parse().expect("integer value");
        parsed.push((name.to_string(), value));
    }
    assert_eq!(parsed.len(), s.fields().len());
    for ((pn, pv), (fn_, fv)) in parsed.iter().zip(s.fields()) {
        assert_eq!(pn, fn_);
        assert_eq!(pv, fv);
    }
    // Field names are unique (merge() must keep them so).
    let mut names: Vec<&str> = parsed.iter().map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), parsed.len(), "duplicate JSON keys");
}

/// Merging two snapshots sums shared fields and appends new ones.
#[test]
fn merge_sums_shared_fields() {
    let a = SingleTree::<FixedKey>::create(pool(64), TreeConfig::fptree(), ROOT_SLOT);
    let b = SingleTree::<FixedKey>::create(pool(64), TreeConfig::fptree(), ROOT_SLOT);
    let (mut a, mut b) = (a, b);
    for k in 0..10u64 {
        a.insert(&k, k);
    }
    for k in 0..25u64 {
        b.insert(&k, k);
    }
    let mut merged = a.metrics_snapshot();
    merged.merge(b.metrics_snapshot());
    if Metrics::enabled() {
        assert_eq!(merged.get("insert_ops"), Some(35));
    } else {
        assert_eq!(merged.get("insert_ops"), Some(0));
    }
}
