//! Integration tests for the keyspace-sharded tree: scan equivalence with
//! an unsharded tree, builder validation and PoolFull shard context, fill
//! statistics, batch equivalence, and the save/load/recovery round-trip
//! through the shard-file family.

use std::sync::Arc;

use fptree_core::{ShardedTree, ShardedTreeVar, TreeBuilder, TreeConfig};
use fptree_pmem::{
    create_pools, load_pools, save_pools, shard_file_count, PmemPool, PoolOptions, ROOT_SLOT,
};
use rand::prelude::*;

fn small_cfg() -> TreeConfig {
    TreeConfig::fptree_concurrent()
        .with_leaf_capacity(4)
        .with_inner_fanout(4)
}

fn pools(n: usize, mb: usize) -> Vec<Arc<PmemPool>> {
    create_pools(n, PoolOptions::direct(mb << 20)).unwrap()
}

fn sharded(n: usize) -> ShardedTree {
    ShardedTree::create(pools(n, 32), small_cfg(), ROOT_SLOT)
}

/// The merged scan of an N-shard tree must be bit-identical to a 1-shard
/// tree's over the same keys — full range, suffix ranges, and bounded
/// sub-ranges.
#[test]
fn sharded_scan_is_bit_identical_to_one_shard() {
    let mut rng = StdRng::seed_from_u64(7);
    let keys: Vec<u64> = (0..5000u64).map(|_| rng.gen_range(0..100_000)).collect();
    let one = sharded(1);
    let many = sharded(5);
    for &k in &keys {
        assert_eq!(one.insert(&k, k ^ 0xAB), many.insert(&k, k ^ 0xAB));
    }
    assert_eq!(one.len(), many.len());

    let full_one: Vec<(u64, u64)> = one.scan(..).collect();
    let full_many: Vec<(u64, u64)> = many.scan(..).collect();
    assert_eq!(full_one, full_many, "full scans must be bit-identical");
    assert!(full_many.windows(2).all(|w| w[0].0 < w[1].0));

    for start in [0u64, 1, 17_000, 99_999, 100_001] {
        let a: Vec<(u64, u64)> = one.scan(start..).collect();
        let b: Vec<(u64, u64)> = many.scan(start..).collect();
        assert_eq!(a, b, "suffix scan from {start}");
        let a: Vec<(u64, u64)> = one.scan(start..start + 5000).collect();
        let b: Vec<(u64, u64)> = many.scan(start..start + 5000).collect();
        assert_eq!(a, b, "bounded scan from {start}");
    }
}

/// Batched writes through the sharded tree must agree with loop-of-singles
/// on an unsharded tree, including duplicate keys inside one batch
/// (first occurrence wins) and misses in remove batches.
#[test]
fn sharded_batches_match_unsharded_loop() {
    let mut rng = StdRng::seed_from_u64(8);
    let single = sharded(1);
    let many = sharded(4);
    for _ in 0..30 {
        let batch: Vec<(u64, u64)> = (0..rng.gen_range(1..200))
            .map(|_| (rng.gen_range(0..800u64), rng.gen()))
            .collect();
        let expect = batch.iter().filter(|(k, v)| single.insert(k, *v)).count();
        assert_eq!(many.insert_batch(&batch), expect);

        let dels: Vec<u64> = (0..rng.gen_range(1..100))
            .map(|_| rng.gen_range(0..800u64))
            .collect();
        let expect = dels.iter().filter(|k| single.remove(k)).count();
        assert_eq!(many.remove_batch(&dels), expect);
    }
    let a: Vec<(u64, u64)> = single.scan(..).collect();
    let b: Vec<(u64, u64)> = many.scan(..).collect();
    assert_eq!(a, b);
    many.check_consistency().unwrap();
    many.leak_audit().unwrap();
}

/// Builder-validated sharded construction: pool-count mismatches are
/// rejected, and an undersized pool reports which shard is too small.
#[test]
fn builder_rejects_mismatched_or_undersized_pools() {
    let b = TreeBuilder::concurrent().shards(3);
    assert!(
        b.build_sharded(pools(2, 8)).is_err(),
        "2 pools for 3 shards"
    );
    let t = b.build_sharded(pools(3, 8)).unwrap();
    assert_eq!(t.shard_count(), 3);

    // Pools below the minimum footprint: the error names shard 0 (checked
    // first) so operators know which file to grow.
    // (the pool layer itself may refuse pools this small)
    if let Ok(p) = create_pools(3, PoolOptions::direct(1 << 12)) {
        let err = b.build_sharded(p).unwrap_err();
        assert_eq!(err.shard(), Some(0), "error must carry the shard index");
    }
}

/// Filling one shard to capacity must surface `PoolFull` context through
/// the metrics fill levels — a skewed keyspace fills one shard first.
#[test]
fn fill_levels_track_per_shard_occupancy() {
    let t = sharded(4);
    for k in 0..3000u64 {
        t.insert(&k, k);
    }
    let fills = t.fill_levels();
    assert_eq!(fills.len(), 4);
    for (live, usable) in &fills {
        assert!(*live > 0, "every shard should hold data under uniform keys");
        assert!(live < usable);
    }
    let snap = t.metrics_snapshot();
    assert_eq!(snap.get("shards"), Some(4));
    let total: u64 = (0..4)
        .map(|i| snap.get(&format!("shard{i}_keys")).unwrap())
        .sum();
    assert_eq!(total, 3000);
    for i in 0..4 {
        assert!(snap.get(&format!("shard{i}_fill_permille")).is_some());
    }
}

/// Save the shard-file family, load it back, recover every shard, and
/// verify the contents — the full persistence round-trip, for both key
/// kinds. The shard count is rediscovered from the files on disk.
#[test]
fn save_load_recover_roundtrip_via_shard_files() {
    let dir = std::env::temp_dir().join(format!("fptree-shard-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("tree.pool");

    {
        let ps = pools(3, 32);
        let t = ShardedTree::create(ps.clone(), small_cfg(), ROOT_SLOT);
        for k in 0..4000u64 {
            t.insert(&(k * 7), k);
        }
        save_pools(&ps, &base).unwrap();
    }
    assert_eq!(shard_file_count(&base), 3);
    {
        let ps = load_pools(&base, PoolOptions::direct(0)).unwrap();
        let t = TreeBuilder::concurrent().open_sharded(ps).unwrap();
        assert_eq!(t.shard_count(), 3);
        assert_eq!(t.len(), 4000);
        for k in 0..4000u64 {
            assert_eq!(t.get(&(k * 7)), Some(k), "key {k} after recovery");
        }
        assert!(t
            .scan(..)
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0].0 < w[1].0));
        t.check_consistency().unwrap();
        t.leak_audit().unwrap();
    }

    // Variable keys through the same family path (separate base).
    let base_var = dir.join("tree-var.pool");
    let key = |k: u64| format!("user:{k:08}").into_bytes();
    {
        let ps = pools(2, 32);
        let cfg = TreeConfig::fptree_concurrent_var()
            .with_leaf_capacity(4)
            .with_inner_fanout(4);
        let t = ShardedTreeVar::create(ps.clone(), cfg, ROOT_SLOT);
        for k in 0..1500 {
            t.insert(&key(k), k);
        }
        save_pools(&ps, &base_var).unwrap();
    }
    {
        let ps = load_pools(&base_var, PoolOptions::direct(0)).unwrap();
        let t = TreeBuilder::concurrent().open_sharded_var(ps).unwrap();
        assert_eq!(t.len(), 1500);
        for k in 0..1500 {
            assert_eq!(t.get(&key(k)), Some(k));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent writers spread across shards: the end state must be exactly
/// the union of all writes, and every shard internally consistent.
#[test]
fn concurrent_writers_across_shards() {
    let t = Arc::new(sharded(4));
    let threads = 4;
    let per = 2000u64;
    std::thread::scope(|s| {
        for w in 0..threads {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for i in 0..per {
                    let k = w * per + i;
                    assert!(t.insert(&k, k + 1));
                }
            });
        }
    });
    assert_eq!(t.len(), (threads * per) as usize);
    for k in 0..threads * per {
        assert_eq!(t.get(&k), Some(k + 1));
    }
    t.check_consistency().unwrap();
    t.leak_audit().unwrap();
}
