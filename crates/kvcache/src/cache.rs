//! The cache core: memcached semantics over a pluggable index.
//!
//! The paper replaces memcached's hash table with the variable-size-key
//! versions of the evaluated trees (§6.4), inserting the *full string key*
//! (not its hash) and relying on the tree's own concurrency scheme instead
//! of memcached's bucket locks. [`KvCache`] is that seam: SET/GET/DELETE
//! over any [`BytesIndex`].

use std::sync::Arc;

use fptree_core::index::BytesIndex;
use fptree_core::metrics::{Counter, Metrics, Snapshot};

use crate::lru::LruList;
use crate::store::{Item, ItemStore};

/// One scanned cache item: `(key, flags, data)`.
pub type ScanItem = (Vec<u8>, u32, Vec<u8>);

/// The serving seam between the protocol/server/bench layers and a cache
/// implementation: [`KvCache`] (one index, one LRU) and
/// [`crate::ShardedCache`] (keyspace-partitioned independent caches) both
/// implement it, so every front-end gets sharding for free via
/// `Arc<dyn Cache>`.
pub trait Cache: Send + Sync {
    /// The serving-layer observability registry (command / byte /
    /// connection counters recorded by the protocol and server layers).
    fn metrics(&self) -> &Arc<Metrics>;

    /// One flat snapshot spanning the whole stack (serving counters, cache
    /// counters, underlying index metrics).
    fn stats_snapshot(&self) -> Snapshot;

    /// Per-shard snapshot breakdown, shard order; `None` when the cache is
    /// not sharded (the `stats shards` wire command answers an error).
    fn shard_stats(&self) -> Option<Vec<Snapshot>> {
        None
    }

    /// Zeroes every counter the stats report draws from (`stats reset`).
    fn reset_stats(&self) {
        self.metrics().reset();
    }

    /// SET: stores `key → (flags, data)`, replacing any existing value.
    fn set(&self, key: &[u8], flags: u32, data: Vec<u8>);

    /// Batched SET; see [`KvCache::set_batch`] for the semantics.
    fn set_batch(&self, items: Vec<(Vec<u8>, u32, Vec<u8>)>);

    /// GET: `(flags, data)` if present.
    fn get(&self, key: &[u8]) -> Option<(u32, Vec<u8>)>;

    /// Multi-key GET: one result per requested key, request order.
    fn get_many(&self, keys: &[Vec<u8>]) -> Vec<Option<(u32, Vec<u8>)>>;

    /// DELETE: true if the key existed.
    fn delete(&self, key: &[u8]) -> bool;

    /// Ordered SCAN; `None` when the index cannot scan (hash).
    fn scan(&self, start: &[u8], count: usize) -> Option<Vec<ScanItem>>;

    /// Number of cached keys.
    fn len(&self) -> usize;

    /// True if no keys are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A memcached-style cache over a pluggable index, with memcached's
/// globally locked LRU eviction when a capacity is set.
///
/// ```
/// use std::sync::Arc;
/// use fptree_kvcache::KvCache;
/// use fptree_baselines::HashIndex;
///
/// let cache = KvCache::with_capacity(Arc::new(HashIndex::<Vec<u8>>::new(8)), 2);
/// cache.set(b"a", 0, b"1".to_vec());
/// cache.set(b"b", 0, b"2".to_vec());
/// cache.set(b"c", 0, b"3".to_vec()); // evicts the LRU key "a"
/// assert!(cache.get(b"a").is_none());
/// assert_eq!(cache.get(b"c").unwrap().1, b"3");
/// ```
pub struct KvCache {
    index: Arc<dyn BytesIndex>,
    store: ItemStore,
    lru: LruList,
    max_items: Option<usize>,
    metrics: Arc<Metrics>,
}

impl KvCache {
    /// Builds an unbounded cache over `index`.
    pub fn new(index: Arc<dyn BytesIndex>) -> KvCache {
        KvCache {
            index,
            store: ItemStore::new(64),
            lru: LruList::new(),
            max_items: None,
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Builds a bounded cache: beyond `max_items`, SETs evict the least
    /// recently used key (memcached semantics).
    pub fn with_capacity(index: Arc<dyn BytesIndex>, max_items: usize) -> KvCache {
        assert!(max_items > 0, "capacity must be positive");
        KvCache {
            index,
            store: ItemStore::new(64),
            lru: LruList::new(),
            max_items: Some(max_items),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// The cache's own observability registry (command/byte/connection
    /// counters recorded by the protocol and server layers).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// One flat snapshot spanning the whole stack: the cache/server
    /// counters followed by the underlying tree's metrics (op latencies,
    /// contention, `htm_*`, `pmem_*`) when the index is instrumented.
    pub fn stats_snapshot(&self) -> Snapshot {
        let mut snap = self.metrics.snapshot();
        snap.push("curr_items", self.index.len() as u64);
        if let Some(tree) = self.index.metrics_snapshot() {
            snap.merge(tree);
        }
        snap
    }

    /// SET: stores `key → (flags, data)`, replacing any existing value and
    /// evicting the LRU tail when over capacity.
    pub fn set(&self, key: &[u8], flags: u32, data: Vec<u8>) {
        let handle = self.store.put(Item { flags, data });
        // Fast path: update in place; fall back to insert for new keys.
        if let Some(old) = self.swap_handle(key, handle) {
            self.store.remove(old);
        }
        self.maybe_evict(key);
    }

    /// Batched SET: the amortized-persistence counterpart of looping
    /// [`KvCache::set`], used by the server to coalesce pipelined sets. Keys
    /// not yet cached are inserted through the index's batched write path
    /// (one flush/fence set per touched leaf on tree indexes); existing keys
    /// are updated in place. Duplicate keys within one batch keep the
    /// **last** item, matching a loop of sets.
    pub fn set_batch(&self, items: Vec<(Vec<u8>, u32, Vec<u8>)>) {
        let mut by_key: Vec<(Vec<u8>, u64)> = Vec::with_capacity(items.len());
        for (key, flags, data) in items {
            let handle = self.store.put(Item { flags, data });
            if let Some(prev) = by_key.iter_mut().find(|(k, _)| *k == key) {
                // In-batch duplicate: the later set wins, the earlier item
                // is dead before it ever reaches the index.
                self.store.remove(prev.1);
                prev.1 = handle;
            } else {
                by_key.push((key, handle));
            }
        }
        // Split into fresh inserts (batched) and in-place updates.
        let current = self
            .index
            .get_batch(&by_key.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
        let mut fresh: Vec<(Vec<u8>, u64)> = Vec::new();
        for ((key, handle), cur) in by_key.iter().zip(&current) {
            match cur {
                Some(_) => {
                    if let Some(old) = self.swap_handle(key, *handle) {
                        self.store.remove(old);
                    }
                }
                None => fresh.push((key.clone(), *handle)),
            }
        }
        if !fresh.is_empty() {
            self.index.insert_batch(&fresh);
            // A concurrent set may have won the insert race for some keys;
            // fall back to the swap path so the batch's value still lands
            // (unordered concurrent sets: either value is a valid outcome,
            // but the loser's item must not leak).
            for (key, handle) in &fresh {
                if self.index.get(key) != Some(*handle) {
                    if let Some(old) = self.swap_handle(key, *handle) {
                        self.store.remove(old);
                    }
                }
            }
        }
        for (key, _) in &by_key {
            self.maybe_evict(key);
        }
    }

    /// Refreshes `key`'s recency and evicts LRU victims while over
    /// capacity. No-op on unbounded caches.
    fn maybe_evict(&self, key: &[u8]) {
        if let Some(cap) = self.max_items {
            let tracked = self.lru.touch(key);
            if tracked > cap {
                // Evict strictly LRU keys until back at capacity; skip the
                // key just written (it is at the front by construction).
                while self.lru.len() > cap {
                    let Some(victim) = self.lru.evict() else {
                        break;
                    };
                    if self.delete_evicted(&victim) {
                        // Only count an eviction when a mapping was actually
                        // removed — a victim already deleted (or re-written
                        // concurrently) is not an eviction.
                        self.metrics.inc(Counter::CacheEvictions);
                    }
                }
            }
        }
    }

    /// Removes an eviction victim, but only if its mapping is unchanged:
    /// between reading the handle and removing the key, a concurrent `set`
    /// can swap in a fresh handle, and an unconditional remove would drop
    /// that fresh mapping while freeing the stale handle — leaking the
    /// just-written item. The compare-and-remove backs off instead.
    fn delete_evicted(&self, key: &[u8]) -> bool {
        if let Some(handle) = self.index.get(key) {
            if self.index.remove_if(key, handle) {
                self.store.remove(handle);
                return true;
            }
        }
        false
    }

    /// Installs `handle` for `key`, returning the handle it displaced (the
    /// caller frees it). The compare-and-update is what makes the returned
    /// handle safe to free: a plain `update` after a racing set would
    /// replace the racer's fresh handle while this thread frees the stale
    /// handle it read earlier — freeing one item twice and leaking another.
    fn swap_handle(&self, key: &[u8], handle: u64) -> Option<u64> {
        loop {
            match self.index.get(key) {
                Some(h) => {
                    if self.index.update_if(key, h, handle) {
                        // Exactly one updater displaces h, so exactly one
                        // caller frees it.
                        return Some(h);
                    }
                    // Value changed (or key vanished) since the get: retry.
                }
                None => {
                    if self.index.insert(key, handle) {
                        return None;
                    }
                    // Key appeared concurrently: retry as update.
                }
            }
        }
    }

    /// GET: returns `(flags, data)` if present; refreshes LRU recency.
    pub fn get(&self, key: &[u8]) -> Option<(u32, Vec<u8>)> {
        let Some(handle) = self.index.get(key) else {
            self.metrics.inc(Counter::CacheMisses);
            return None;
        };
        let item = self.store.get(handle).map(|i| (i.flags, i.data));
        if item.is_some() {
            self.metrics.inc(Counter::CacheHits);
            if self.max_items.is_some() {
                self.lru.touch(key);
            }
        } else {
            self.metrics.inc(Counter::CacheMisses);
        }
        item
    }

    /// DELETE: removes the key; true if it existed. Uses the same
    /// compare-and-remove as eviction so a racing `set` never has its fresh
    /// item freed under it; on a lost race the delete retries against the
    /// new handle (the delete arrived after that set, so it must win).
    pub fn delete(&self, key: &[u8]) -> bool {
        loop {
            let Some(handle) = self.index.get(key) else {
                return false;
            };
            if self.index.remove_if(key, handle) {
                self.store.remove(handle);
                if self.max_items.is_some() {
                    self.lru.remove(key);
                }
                return true;
            }
        }
    }

    /// Multi-key GET: one result per requested key, in request order. The
    /// index lookups go through [`BytesIndex::get_batch`], so tree-backed
    /// caches answer the whole request under one traversal lock
    /// acquisition; hits refresh LRU recency exactly like single GETs.
    pub fn get_many(&self, keys: &[Vec<u8>]) -> Vec<Option<(u32, Vec<u8>)>> {
        let handles = self.index.get_batch(keys);
        keys.iter()
            .zip(handles)
            .map(|(key, handle)| {
                let item = handle
                    .and_then(|h| self.store.get(h))
                    .map(|i| (i.flags, i.data));
                if item.is_some() {
                    self.metrics.inc(Counter::CacheHits);
                    if self.max_items.is_some() {
                        self.lru.touch(key);
                    }
                } else {
                    self.metrics.inc(Counter::CacheMisses);
                }
                item
            })
            .collect()
    }

    /// SCAN: up to `count` items with keys `>= start`, in key order, as
    /// `(key, flags, data)`. `None` when the index has no ordered scan
    /// (hash). Scans do not refresh LRU recency: a range read is not a
    /// per-key access signal (and would let one scan wipe the recency
    /// ordering).
    pub fn scan(&self, start: &[u8], count: usize) -> Option<Vec<ScanItem>> {
        let entries = self.index.scan_from(start, count)?;
        Some(
            entries
                .into_iter()
                .filter_map(|(key, handle)| {
                    // A concurrent delete can race the handle lookup; drop
                    // the entry rather than fabricate an empty item.
                    let item = self.store.get(handle)?;
                    Some((key, item.flags, item.data))
                })
                .collect(),
        )
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

impl Cache for KvCache {
    fn metrics(&self) -> &Arc<Metrics> {
        KvCache::metrics(self)
    }
    fn stats_snapshot(&self) -> Snapshot {
        KvCache::stats_snapshot(self)
    }
    fn set(&self, key: &[u8], flags: u32, data: Vec<u8>) {
        KvCache::set(self, key, flags, data)
    }
    fn set_batch(&self, items: Vec<(Vec<u8>, u32, Vec<u8>)>) {
        KvCache::set_batch(self, items)
    }
    fn get(&self, key: &[u8]) -> Option<(u32, Vec<u8>)> {
        KvCache::get(self, key)
    }
    fn get_many(&self, keys: &[Vec<u8>]) -> Vec<Option<(u32, Vec<u8>)>> {
        KvCache::get_many(self, keys)
    }
    fn delete(&self, key: &[u8]) -> bool {
        KvCache::delete(self, key)
    }
    fn scan(&self, start: &[u8], count: usize) -> Option<Vec<ScanItem>> {
        KvCache::scan(self, start, count)
    }
    fn len(&self) -> usize {
        KvCache::len(self)
    }
    fn is_empty(&self) -> bool {
        KvCache::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fptree_baselines::HashIndex;

    fn cache() -> KvCache {
        KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(16)))
    }

    #[test]
    fn set_get_roundtrip() {
        let c = cache();
        c.set(b"k1", 5, b"value-1".to_vec());
        assert_eq!(c.get(b"k1"), Some((5, b"value-1".to_vec())));
        assert_eq!(c.get(b"missing"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_replaces_and_frees_old_item() {
        let c = cache();
        c.set(b"k", 0, b"old".to_vec());
        c.set(b"k", 1, b"new".to_vec());
        assert_eq!(c.get(b"k"), Some((1, b"new".to_vec())));
        assert_eq!(c.len(), 1);
        // The old item must have been freed (store holds exactly one).
        assert_eq!(c.store.len(), 1);
    }

    #[test]
    fn delete_semantics() {
        let c = cache();
        c.set(b"k", 0, b"v".to_vec());
        assert!(c.delete(b"k"));
        assert!(!c.delete(b"k"));
        assert_eq!(c.get(b"k"), None);
        assert!(c.is_empty());
        assert_eq!(c.store.len(), 0);
    }

    #[test]
    fn works_over_tree_indexes() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let c = KvCache::new(Arc::new(Locked::new(tree)));
        for i in 0..500 {
            c.set(
                format!("key:{i}").as_bytes(),
                i,
                format!("val-{i}").into_bytes(),
            );
        }
        for i in 0..500 {
            let (f, v) = c.get(format!("key:{i}").as_bytes()).unwrap();
            assert_eq!(f, i);
            assert_eq!(v, format!("val-{i}").into_bytes());
        }
    }

    #[test]
    fn scan_over_tree_index_is_ordered() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let c = KvCache::new(Arc::new(Locked::new(tree)));
        for i in (0..100).rev() {
            c.set(format!("key:{i:04}").as_bytes(), i, vec![i as u8]);
        }
        let items = c.scan(b"key:0040", 5).unwrap();
        let keys: Vec<_> = items
            .iter()
            .map(|(k, _, _)| String::from_utf8_lossy(k).into_owned())
            .collect();
        assert_eq!(
            keys,
            ["key:0040", "key:0041", "key:0042", "key:0043", "key:0044"]
        );
        assert_eq!(items[0].1, 40);
        assert_eq!(items[0].2, vec![40u8]);
        // Hash indexes cannot scan.
        assert!(cache().scan(b"", 10).is_none());
    }

    #[test]
    fn get_many_returns_request_order() {
        let c = cache();
        c.set(b"a", 1, b"A".to_vec());
        c.set(b"c", 3, b"C".to_vec());
        let got = c.get_many(&[b"c".to_vec(), b"b".to_vec(), b"a".to_vec()]);
        assert_eq!(
            got,
            vec![Some((3, b"C".to_vec())), None, Some((1, b"A".to_vec())),]
        );
    }

    #[test]
    fn set_batch_matches_loop_of_sets() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let c = KvCache::new(Arc::new(Locked::new(tree)));
        c.set(b"k005", 9, b"old".to_vec()); // overwritten by the batch
        let items: Vec<(Vec<u8>, u32, Vec<u8>)> = (0..50u32)
            .map(|i| {
                (
                    format!("k{i:03}").into_bytes(),
                    i,
                    format!("v{i}").into_bytes(),
                )
            })
            .collect();
        c.set_batch(items);
        // In-batch duplicate: the last one wins, like a loop of sets.
        c.set_batch(vec![
            (b"dup".to_vec(), 0, b"first".to_vec()),
            (b"dup".to_vec(), 0, b"second".to_vec()),
        ]);
        assert_eq!(c.len(), 51);
        assert_eq!(c.get(b"k005"), Some((5, b"v5".to_vec())));
        assert_eq!(c.get(b"k049"), Some((49, b"v49".to_vec())));
        assert_eq!(c.get(b"dup"), Some((0, b"second".to_vec())));
        // No leaked store items: one per live key.
        assert_eq!(c.store.len(), 51);
    }

    #[test]
    fn set_batch_respects_capacity() {
        let c = KvCache::with_capacity(Arc::new(HashIndex::<Vec<u8>>::new(4)), 3);
        let items: Vec<(Vec<u8>, u32, Vec<u8>)> = (0..10u32)
            .map(|i| (format!("k{i}").into_bytes(), 0, vec![i as u8]))
            .collect();
        c.set_batch(items);
        assert_eq!(c.len(), 3);
        assert_eq!(c.store.len(), 3);
        assert!(c.get(b"k9").is_some());
        assert!(c.get(b"k0").is_none());
    }

    #[test]
    fn concurrent_set_get() {
        let c = Arc::new(cache());
        let handles: Vec<_> = (0..8)
            .map(|t: u32| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2000u32 {
                        let key = format!("t{t}:{i}");
                        c.set(key.as_bytes(), t, i.to_le_bytes().to_vec());
                        let (f, v) = c.get(key.as_bytes()).unwrap();
                        assert_eq!(f, t);
                        assert_eq!(v, i.to_le_bytes().to_vec());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 16_000);
    }
}

#[cfg(test)]
mod lru_tests {
    use super::*;
    use fptree_baselines::HashIndex;

    fn bounded(cap: usize) -> KvCache {
        KvCache::with_capacity(Arc::new(HashIndex::<Vec<u8>>::new(4)), cap)
    }

    #[test]
    fn eviction_keeps_capacity() {
        let c = bounded(3);
        for i in 0..10u32 {
            c.set(format!("k{i}").as_bytes(), 0, vec![i as u8]);
        }
        assert_eq!(c.len(), 3);
        // The three most recent survive.
        assert!(c.get(b"k9").is_some());
        assert!(c.get(b"k8").is_some());
        assert!(c.get(b"k7").is_some());
        assert!(c.get(b"k0").is_none());
        // The store freed evicted items too.
        assert_eq!(c.store.len(), 3);
    }

    #[test]
    fn get_refreshes_recency() {
        let c = bounded(2);
        c.set(b"a", 0, b"1".to_vec());
        c.set(b"b", 0, b"2".to_vec());
        assert!(c.get(b"a").is_some()); // a is now most recent
        c.set(b"c", 0, b"3".to_vec()); // evicts b
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"b").is_none());
        assert!(c.get(b"c").is_some());
    }

    #[test]
    fn overwrite_does_not_evict() {
        let c = bounded(2);
        c.set(b"a", 0, b"1".to_vec());
        c.set(b"b", 0, b"2".to_vec());
        c.set(b"a", 0, b"1b".to_vec()); // overwrite, still 2 keys
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(b"a").unwrap().1, b"1b".to_vec());
        assert!(c.get(b"b").is_some());
    }

    #[test]
    fn delete_untracks() {
        let c = bounded(2);
        c.set(b"a", 0, b"1".to_vec());
        c.set(b"b", 0, b"2".to_vec());
        assert!(c.delete(b"a"));
        c.set(b"c", 0, b"3".to_vec()); // fits without eviction
        assert_eq!(c.len(), 2);
        assert!(c.get(b"b").is_some());
        assert!(c.get(b"c").is_some());
    }

    #[test]
    fn evictions_counted_only_on_actual_removal() {
        let c = bounded(2);
        for i in 0..5u32 {
            c.set(format!("k{i}").as_bytes(), 0, vec![i as u8]);
        }
        if fptree_core::Metrics::enabled() {
            // 5 sets into capacity 2: exactly 3 victims actually removed.
            assert_eq!(c.stats_snapshot().get("cache_evictions"), Some(3));
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn concurrent_set_vs_evict_does_not_leak_items() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let c = Arc::new(KvCache::with_capacity(Arc::new(Locked::new(tree)), 16));
        // Writers hammer a small, shared key set so evictions of a key
        // constantly race re-sets of that same key — the window where a
        // stale-handle remove would free the fresh item.
        let handles: Vec<_> = (0..4)
            .map(|t: u32| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..3000u32 {
                        let key = format!("k{}", (t * 7 + i) % 24);
                        c.set(key.as_bytes(), t, vec![(i % 251) as u8; 8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every index entry must resolve to a live item (no mapping ever
        // pointed at a freed handle) ...
        for i in 0..24u32 {
            let key = format!("k{i}");
            if c.get(key.as_bytes()).is_some() {
                assert!(!c.get(key.as_bytes()).unwrap().1.is_empty());
            }
        }
        // ... and no item leaked: the store holds exactly the indexed keys.
        assert_eq!(c.store.len(), c.len(), "leaked or dangling store items");
        assert!(c.len() <= 16);
    }

    #[test]
    fn eviction_works_over_persistent_tree() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let c = KvCache::with_capacity(Arc::new(Locked::new(tree)), 50);
        for i in 0..300u32 {
            c.set(format!("key:{i:04}").as_bytes(), 0, vec![0u8; 8]);
        }
        assert_eq!(c.len(), 50);
        assert!(c.get(b"key:0299").is_some());
        assert!(c.get(b"key:0000").is_none());
    }
}
