//! Keyspace-sharded cache: N independent [`KvCache`]s behind one
//! [`Cache`] facade.
//!
//! A single [`KvCache`] funnels every SET through one globally locked LRU
//! list and one index, so the serving layer inherits the index's
//! contention wall *plus* the LRU lock. [`ShardedCache`] partitions the
//! keyspace with the same byte-string hash the sharded tree uses
//! ([`fptree_core::shard::bytes_shard`]), giving every shard its own
//! index, item store, LRU list, and metrics registry — a cache shard and a
//! tree shard always agree on key placement, so a shard's cache entries
//! live in that shard's pool file.
//!
//! Cross-shard semantics:
//!
//! * point commands (SET/GET/DELETE) touch exactly one shard;
//! * `set_batch` splits into per-shard sub-batches committed in parallel
//!   (each through its shard index's amortized batched write path);
//! * `scan` merges the per-shard ordered scans into one sorted,
//!   duplicate-free result (shards hold disjoint keys);
//! * capacity is divided across shards, so eviction pressure is local — a
//!   hot shard evicts its own tail without touching cold shards;
//! * `stats` aggregates shard snapshots via `Snapshot::merge`; the
//!   per-shard breakdown stays behind the `stats shards` wire command.

use std::sync::Arc;

use fptree_core::index::BytesIndex;
use fptree_core::metrics::{Metrics, Snapshot};
use fptree_core::shard::bytes_shard;

use crate::cache::{Cache, KvCache, ScanItem};

/// A keyspace-sharded family of [`KvCache`]s behaving as one cache.
pub struct ShardedCache {
    shards: Vec<KvCache>,
    /// Serving-layer registry (protocol/server counters); the per-shard
    /// cache counters live in each shard's own [`KvCache`] registry.
    metrics: Arc<Metrics>,
}

impl ShardedCache {
    /// Builds an unbounded sharded cache, one shard per index. Panics on an
    /// empty index list.
    pub fn new(indexes: Vec<Arc<dyn BytesIndex>>) -> ShardedCache {
        assert!(
            !indexes.is_empty(),
            "sharded cache needs at least one index"
        );
        ShardedCache {
            shards: indexes.into_iter().map(KvCache::new).collect(),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Builds a bounded sharded cache: `max_items` is a *total* budget,
    /// divided evenly across shards (rounded up, so the real ceiling is at
    /// most `shards - 1` above the budget). Eviction is per shard — a hot
    /// shard evicts its own LRU tail while cold shards keep theirs.
    pub fn with_capacity(indexes: Vec<Arc<dyn BytesIndex>>, max_items: usize) -> ShardedCache {
        assert!(
            !indexes.is_empty(),
            "sharded cache needs at least one index"
        );
        assert!(max_items > 0, "capacity must be positive");
        let per_shard = max_items.div_ceil(indexes.len());
        ShardedCache {
            shards: indexes
                .into_iter()
                .map(|idx| KvCache::with_capacity(idx, per_shard))
                .collect(),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard caches themselves, shard order.
    pub fn shards(&self) -> &[KvCache] {
        &self.shards
    }

    /// The shard `key` routes to (same hash as the sharded tree).
    #[inline]
    pub fn shard_for(&self, key: &[u8]) -> usize {
        bytes_shard(key, self.shards.len())
    }

    #[inline]
    fn shard(&self, key: &[u8]) -> &KvCache {
        &self.shards[self.shard_for(key)]
    }
}

impl Cache for ShardedCache {
    fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    fn stats_snapshot(&self) -> Snapshot {
        // Serving counters first, then every shard's full stack snapshot
        // merged in (shared fields sum: curr_items totals, cache hit/miss
        // counters add up, tree/pool metrics aggregate).
        let mut snap = self.metrics.snapshot();
        for shard in &self.shards {
            snap.merge(shard.stats_snapshot());
        }
        snap.push("shards", self.shards.len() as u64);
        for (i, shard) in self.shards.iter().enumerate() {
            snap.push(format!("shard{i}_items"), shard.len() as u64);
        }
        snap
    }

    fn shard_stats(&self) -> Option<Vec<Snapshot>> {
        Some(self.shards.iter().map(|s| s.stats_snapshot()).collect())
    }

    fn reset_stats(&self) {
        self.metrics().reset();
        for shard in &self.shards {
            shard.metrics().reset();
        }
    }

    fn set(&self, key: &[u8], flags: u32, data: Vec<u8>) {
        self.shard(key).set(key, flags, data)
    }

    fn set_batch(&self, items: Vec<(Vec<u8>, u32, Vec<u8>)>) {
        if self.shards.len() == 1 {
            return self.shards[0].set_batch(items);
        }
        type Batch = Vec<(Vec<u8>, u32, Vec<u8>)>;
        let mut parts: Vec<Batch> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for item in items {
            // Relative order within a shard is preserved, so in-batch
            // duplicate keys keep last-wins semantics (duplicates always
            // land in the same shard).
            parts[self.shard_for(&item.0)].push(item);
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .enumerate()
                .filter(|(_, part)| !part.is_empty())
                .map(|(i, part)| {
                    let shard = &self.shards[i];
                    s.spawn(move || shard.set_batch(part))
                })
                .collect();
            for h in handles {
                h.join().expect("shard set_batch worker panicked");
            }
        })
    }

    fn get(&self, key: &[u8]) -> Option<(u32, Vec<u8>)> {
        self.shard(key).get(key)
    }

    fn get_many(&self, keys: &[Vec<u8>]) -> Vec<Option<(u32, Vec<u8>)>> {
        if self.shards.len() == 1 {
            return self.shards[0].get_many(keys);
        }
        // Partition by shard (remembering request positions) so each shard
        // answers its group through one batched index lookup, then scatter
        // the answers back into request order.
        let mut groups: Vec<(Vec<usize>, Vec<Vec<u8>>)> = (0..self.shards.len())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for (pos, key) in keys.iter().enumerate() {
            let g = &mut groups[self.shard_for(key)];
            g.0.push(pos);
            g.1.push(key.clone());
        }
        let mut out = vec![None; keys.len()];
        for (i, (positions, group_keys)) in groups.into_iter().enumerate() {
            if group_keys.is_empty() {
                continue;
            }
            for (pos, item) in positions
                .into_iter()
                .zip(self.shards[i].get_many(&group_keys))
            {
                out[pos] = item;
            }
        }
        out
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.shard(key).delete(key)
    }

    fn scan(&self, start: &[u8], count: usize) -> Option<Vec<ScanItem>> {
        // Every shard scans its own slice of the keyspace; since shards
        // hold disjoint keys, one sort over the union re-establishes the
        // global order. Any shard without an ordered index fails the whole
        // scan (mixed-index shard sets are a configuration error).
        let mut all: Vec<ScanItem> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.scan(start, count)?);
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(count);
        Some(all)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fptree_baselines::HashIndex;

    fn hash_indexes(n: usize) -> Vec<Arc<dyn BytesIndex>> {
        (0..n)
            .map(|_| Arc::new(HashIndex::<Vec<u8>>::new(8)) as Arc<dyn BytesIndex>)
            .collect()
    }

    fn tree_indexes(n: usize) -> Vec<Arc<dyn BytesIndex>> {
        use fptree_core::TreeConfig;
        use fptree_pmem::{create_pools, PoolOptions, ROOT_SLOT};
        create_pools(n, PoolOptions::direct(32 << 20))
            .unwrap()
            .into_iter()
            .map(|pool| {
                Arc::new(fptree_core::ConcurrentFPTreeVar::create(
                    pool,
                    TreeConfig::fptree_concurrent_var(),
                    ROOT_SLOT,
                )) as Arc<dyn BytesIndex>
            })
            .collect()
    }

    #[test]
    fn point_ops_route_consistently() {
        let c = ShardedCache::new(hash_indexes(4));
        for i in 0..500u32 {
            c.set(
                format!("key:{i}").as_bytes(),
                i,
                format!("v{i}").into_bytes(),
            );
        }
        assert_eq!(c.len(), 500);
        for i in 0..500u32 {
            let (f, v) = c.get(format!("key:{i}").as_bytes()).unwrap();
            assert_eq!(f, i);
            assert_eq!(v, format!("v{i}").into_bytes());
        }
        assert!(c.delete(b"key:7"));
        assert!(!c.delete(b"key:7"));
        assert_eq!(c.len(), 499);
        // Keys actually spread over multiple shards.
        let populated = c.shards().iter().filter(|s| !s.is_empty()).count();
        assert!(populated >= 2, "all keys landed in {populated} shard(s)");
    }

    #[test]
    fn set_batch_splits_like_loop_of_sets() {
        let c = ShardedCache::new(tree_indexes(3));
        c.set(b"k005", 9, b"old".to_vec());
        let items: Vec<ScanItem> = (0..60u32)
            .map(|i| {
                (
                    format!("k{i:03}").into_bytes(),
                    i,
                    format!("v{i}").into_bytes(),
                )
            })
            .collect();
        c.set_batch(items);
        // In-batch duplicates keep last-wins (both land in one shard).
        c.set_batch(vec![
            (b"dup".to_vec(), 0, b"first".to_vec()),
            (b"dup".to_vec(), 0, b"second".to_vec()),
        ]);
        assert_eq!(c.len(), 61);
        assert_eq!(c.get(b"k005"), Some((5, b"v5".to_vec())));
        assert_eq!(c.get(b"dup"), Some((0, b"second".to_vec())));
    }

    #[test]
    fn scan_merges_shards_sorted_and_dup_free() {
        let c = ShardedCache::new(tree_indexes(4));
        for i in (0..100u32).rev() {
            c.set(format!("key:{i:04}").as_bytes(), i, vec![i as u8]);
        }
        let items = c.scan(b"key:0040", 10).unwrap();
        let keys: Vec<_> = items
            .iter()
            .map(|(k, _, _)| String::from_utf8_lossy(k).into_owned())
            .collect();
        let expect: Vec<String> = (40..50).map(|i| format!("key:{i:04}")).collect();
        assert_eq!(keys, expect);
        // Hash shards cannot scan.
        assert!(ShardedCache::new(hash_indexes(2)).scan(b"", 5).is_none());
    }

    #[test]
    fn get_many_returns_request_order_across_shards() {
        let c = ShardedCache::new(hash_indexes(4));
        c.set(b"a", 1, b"A".to_vec());
        c.set(b"c", 3, b"C".to_vec());
        c.set(b"e", 5, b"E".to_vec());
        let got = c.get_many(&[b"c".to_vec(), b"b".to_vec(), b"e".to_vec(), b"a".to_vec()]);
        assert_eq!(
            got,
            vec![
                Some((3, b"C".to_vec())),
                None,
                Some((5, b"E".to_vec())),
                Some((1, b"A".to_vec())),
            ]
        );
    }

    #[test]
    fn capacity_is_divided_and_evicts_locally() {
        let c = ShardedCache::with_capacity(hash_indexes(4), 40);
        for i in 0..400u32 {
            c.set(format!("k{i}").as_bytes(), 0, vec![i as u8]);
        }
        // Per-shard ceiling is ceil(40/4)=10, so the total sits in
        // [capacity, capacity + shards - 1] even under skew.
        assert!(c.len() <= 40 + 3, "len {} exceeds ceiling", c.len());
        for shard in c.shards() {
            assert!(shard.len() <= 10);
        }
    }

    #[test]
    fn stats_aggregate_and_break_down_per_shard() {
        let c = ShardedCache::new(hash_indexes(2));
        for i in 0..100u32 {
            c.set(format!("key:{i}").as_bytes(), 0, b"v".to_vec());
        }
        let snap = c.stats_snapshot();
        assert_eq!(snap.get("shards"), Some(2));
        assert_eq!(snap.get("curr_items"), Some(100));
        let s0 = snap.get("shard0_items").unwrap();
        let s1 = snap.get("shard1_items").unwrap();
        assert_eq!(s0 + s1, 100);
        let per_shard = c.shard_stats().unwrap();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(
            per_shard[0].get("curr_items").unwrap() + per_shard[1].get("curr_items").unwrap(),
            100
        );
        // Unsharded caches expose no breakdown.
        assert!(KvCache::new(hash_indexes(1).pop().unwrap())
            .shard_stats()
            .is_none());
        // reset_stats reaches the shard registries too.
        if fptree_core::Metrics::enabled() {
            assert!(c.stats_snapshot().get("cache_hits").is_some());
            c.get(b"key:1");
            c.reset_stats();
            assert_eq!(c.stats_snapshot().get("cache_hits"), Some(0));
        }
    }

    #[test]
    fn concurrent_sets_across_shards() {
        let c = Arc::new(ShardedCache::new(tree_indexes(4)));
        let handles: Vec<_> = (0..4)
            .map(|t: u32| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        let key = format!("t{t}:{i}");
                        c.set(key.as_bytes(), t, i.to_le_bytes().to_vec());
                        assert_eq!(c.get(key.as_bytes()).unwrap().1, i.to_le_bytes().to_vec());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 4000);
    }
}
