//! LRU eviction list with a global lock — memcached's design (the paper
//! notes memcached "employs a locking mechanism on two levels: the first is
//! global locks on the LRU lists of items"). Intrusive doubly-linked list
//! over a slab, O(1) touch/insert/evict.

use parking_lot::Mutex;
use std::collections::HashMap;

struct Node {
    key: Vec<u8>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

struct LruState {
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: HashMap<Vec<u8>, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

/// A globally locked LRU list of cache keys.
pub struct LruList {
    state: Mutex<LruState>,
}

impl Default for LruList {
    fn default() -> Self {
        Self::new()
    }
}

impl LruList {
    /// Creates an empty list.
    pub fn new() -> LruList {
        LruList {
            state: Mutex::new(LruState {
                nodes: Vec::new(),
                free: Vec::new(),
                index: HashMap::new(),
                head: NIL,
                tail: NIL,
            }),
        }
    }

    /// Marks `key` as most recently used, inserting it if new. Returns the
    /// number of tracked keys.
    pub fn touch(&self, key: &[u8]) -> usize {
        let mut s = self.state.lock();
        match s.index.get(key).copied() {
            Some(idx) => move_to_front(&mut s, idx),
            None => {
                let idx = match s.free.pop() {
                    Some(i) => {
                        s.nodes[i] = Node {
                            key: key.to_vec(),
                            prev: NIL,
                            next: NIL,
                        };
                        i
                    }
                    None => {
                        s.nodes.push(Node {
                            key: key.to_vec(),
                            prev: NIL,
                            next: NIL,
                        });
                        s.nodes.len() - 1
                    }
                };
                s.index.insert(key.to_vec(), idx);
                push_front(&mut s, idx);
            }
        }
        s.index.len()
    }

    /// Removes `key` from the list (cache delete).
    pub fn remove(&self, key: &[u8]) {
        let mut s = self.state.lock();
        if let Some(idx) = s.index.remove(key) {
            unlink(&mut s, idx);
            s.free.push(idx);
        }
    }

    /// Pops the least recently used key, if any.
    pub fn evict(&self) -> Option<Vec<u8>> {
        let mut s = self.state.lock();
        let idx = s.tail;
        if idx == NIL {
            return None;
        }
        unlink(&mut s, idx);
        let key = std::mem::take(&mut s.nodes[idx].key);
        s.index.remove(&key);
        s.free.push(idx);
        Some(key)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.state.lock().index.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys from most to least recently used (tests/inspection).
    pub fn snapshot(&self) -> Vec<Vec<u8>> {
        let s = self.state.lock();
        let mut out = Vec::with_capacity(s.index.len());
        let mut cur = s.head;
        while cur != NIL {
            out.push(s.nodes[cur].key.clone());
            cur = s.nodes[cur].next;
        }
        out
    }
}

fn unlink(s: &mut LruState, idx: usize) {
    let (prev, next) = (s.nodes[idx].prev, s.nodes[idx].next);
    if prev != NIL {
        s.nodes[prev].next = next;
    } else {
        s.head = next;
    }
    if next != NIL {
        s.nodes[next].prev = prev;
    } else {
        s.tail = prev;
    }
    s.nodes[idx].prev = NIL;
    s.nodes[idx].next = NIL;
}

fn push_front(s: &mut LruState, idx: usize) {
    s.nodes[idx].prev = NIL;
    s.nodes[idx].next = s.head;
    if s.head != NIL {
        s.nodes[s.head].prev = idx;
    }
    s.head = idx;
    if s.tail == NIL {
        s.tail = idx;
    }
}

fn move_to_front(s: &mut LruState, idx: usize) {
    if s.head == idx {
        return;
    }
    unlink(s, idx);
    push_front(s, idx);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_orders_by_recency() {
        let l = LruList::new();
        l.touch(b"a");
        l.touch(b"b");
        l.touch(b"c");
        assert_eq!(
            l.snapshot(),
            vec![b"c".to_vec(), b"b".to_vec(), b"a".to_vec()]
        );
        l.touch(b"a");
        assert_eq!(
            l.snapshot(),
            vec![b"a".to_vec(), b"c".to_vec(), b"b".to_vec()]
        );
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn evict_pops_least_recent() {
        let l = LruList::new();
        for k in [b"a", b"b", b"c"] {
            l.touch(k);
        }
        l.touch(b"a"); // b is now least recent... no: order c,b after a-touch -> lru is b
        assert_eq!(l.evict(), Some(b"b".to_vec()));
        assert_eq!(l.evict(), Some(b"c".to_vec()));
        assert_eq!(l.evict(), Some(b"a".to_vec()));
        assert_eq!(l.evict(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_and_slab_reuse() {
        let l = LruList::new();
        l.touch(b"x");
        l.touch(b"y");
        l.remove(b"x");
        assert_eq!(l.len(), 1);
        l.remove(b"x"); // idempotent
        l.touch(b"z"); // reuses x's slab slot
        assert_eq!(l.snapshot(), vec![b"z".to_vec(), b"y".to_vec()]);
        assert_eq!(l.evict(), Some(b"y".to_vec()));
        assert_eq!(l.evict(), Some(b"z".to_vec()));
    }

    #[test]
    fn concurrent_touches_do_not_lose_keys() {
        let l = std::sync::Arc::new(LruList::new());
        let handles: Vec<_> = (0..4u8)
            .map(|t| {
                let l = std::sync::Arc::clone(&l);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        l.touch(format!("{t}:{i}").as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.len(), 2000);
    }
}
