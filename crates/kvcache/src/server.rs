//! TCP front-end: a thread-per-connection memcached-protocol server.
//!
//! Used by the examples and available to the benchmarks; the mc-benchmark
//! harness defaults to in-process calls with a modeled network cost (see
//! [`crate::mcbench`]) because the paper's finding under test is that the
//! *network* is the bottleneck, not loopback throughput.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::cache::KvCache;
use crate::protocol::{execute, parse, Command, ParseError};

/// Handle to a running server; dropping does not stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// Address the server actually bound (useful with port 0).
    pub addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Signals the accept loop to stop and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Starts a server for `cache` on `addr` (e.g. "127.0.0.1:0").
pub fn serve(cache: Arc<KvCache>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &cache);
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        join: Some(join),
    })
}

fn handle_connection(mut stream: TcpStream, cache: &KvCache) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        match parse(&buf) {
            Ok((cmd, used)) => {
                buf.drain(..used);
                if matches!(cmd, Command::Quit) {
                    return Ok(());
                }
                let resp = execute(cache, &cmd);
                stream.write_all(&resp)?;
            }
            Err(ParseError::Incomplete) => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(()); // client hung up
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(ParseError::Bad(_)) => {
                stream.write_all(b"ERROR\r\n")?;
                return Ok(());
            }
        }
    }
}

/// A minimal blocking client for tests and examples.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// SET; waits for `STORED`.
    pub fn set(&mut self, key: &str, data: &[u8]) -> std::io::Result<()> {
        let mut msg = format!("set {key} 0 0 {}\r\n", data.len()).into_bytes();
        msg.extend_from_slice(data);
        msg.extend_from_slice(b"\r\n");
        self.stream.write_all(&msg)?;
        self.read_line()?; // STORED
        Ok(())
    }

    /// GET; returns the value if present.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.stream.write_all(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        if header == b"END" {
            return Ok(None);
        }
        // VALUE <key> <flags> <bytes>
        let text = String::from_utf8_lossy(&header).to_string();
        let bytes: usize = text
            .split_ascii_whitespace()
            .nth(3)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other("bad VALUE header"))?;
        while self.buf.len() < bytes + 2 {
            self.fill()?;
        }
        let data = self.buf[..bytes].to_vec();
        self.buf.drain(..bytes + 2);
        self.read_line()?; // END
        Ok(Some(data))
    }

    fn read_line(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let line = self.buf[..pos].to_vec();
                self.buf.drain(..pos + 2);
                return Ok(line);
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("connection closed"));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fptree_baselines::HashIndex;

    #[test]
    fn end_to_end_over_tcp() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        client.set("alpha", b"one").unwrap();
        client.set("beta", b"two").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"one".to_vec()));
        assert_eq!(client.get("beta").unwrap(), Some(b"two".to_vec()));
        assert_eq!(client.get("gamma").unwrap(), None);
        // Overwrite.
        client.set("alpha", b"uno").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"uno".to_vec()));
        server.shutdown();
    }

    #[test]
    fn many_clients() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache), "127.0.0.1:0").unwrap();
        let addr = server.addr;
        let handles: Vec<_> = (0..4)
            .map(|t: u32| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for i in 0..200 {
                        let key = format!("t{t}k{i}");
                        c.set(&key, format!("v{i}").as_bytes()).unwrap();
                        assert_eq!(c.get(&key).unwrap(), Some(format!("v{i}").into_bytes()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 800);
        server.shutdown();
    }
}
