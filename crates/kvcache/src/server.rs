//! TCP front-end: a thread-per-connection memcached-protocol server.
//!
//! Used by the examples and available to the benchmarks; the mc-benchmark
//! harness defaults to in-process calls with a modeled network cost (see
//! [`crate::mcbench`]) because the paper's finding under test is that the
//! *network* is the bottleneck, not loopback throughput.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use fptree_core::metrics::{Counter, Metrics};

use crate::cache::Cache;
use crate::protocol::{execute, parse, Command, ParseError};

/// Upper bound on one connection's unparsed request buffer. A client that
/// streams bytes without ever completing a frame (a slowloris, or a `set`
/// announcing an absurd byte count) is answered `ERROR` and disconnected
/// instead of growing the buffer without limit. Sized above memcached's
/// traditional 1 MiB item ceiling so every legitimate frame still fits.
pub const MAX_FRAME_BYTES: usize = (1 << 20) + 4096;

/// Most consecutive pipelined `set` commands coalesced into one
/// [`Cache::set_batch`] call. A client that pipelines its load phase
/// (memcached `noreply` style) gets the tree's amortized batched write path
/// — one flush/fence set per touched leaf — instead of a full persistence
/// round per key.
pub const SET_BATCH_MAX: usize = 64;

/// Default cap on concurrently served connections (the server is
/// thread-per-connection, so this also bounds spawned OS threads). Accepts
/// beyond the cap are answered `SERVER_ERROR too many connections` and
/// closed, counted under `conn_rejected`.
pub const MAX_CONNECTIONS: usize = 1024;

/// Handle to a running server. [`ServerHandle::shutdown`] stops it
/// explicitly; dropping the handle shuts it down too.
pub struct ServerHandle {
    /// Address the server actually bound (useful with port 0).
    pub addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// Signals the accept loop to stop and joins it. Idempotent: calling
    /// again (or dropping after a call) is a no-op.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let Some(join) = self.join.lock().unwrap().take() else {
            return; // already shut down
        };
        // Nudge the blocking accept with a dummy connection — bounded, so
        // shutdown cannot hang if the network stack swallows the connect.
        for _ in 0..3 {
            match TcpStream::connect_timeout(&self.addr, std::time::Duration::from_millis(500)) {
                // The accept loop woke up and will observe `stop`.
                Ok(_) => break,
                // Success too: the listener is already gone, so the accept
                // loop has exited and the join below cannot block.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => break,
                // Transient failure (timeout, interrupted): retry the nudge.
                Err(_) => continue,
            }
        }
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a server for `cache` on `addr` (e.g. "127.0.0.1:0") with the
/// default [`MAX_CONNECTIONS`] cap. Accepts any [`Cache`] — plain
/// [`crate::KvCache`] and [`crate::ShardedCache`] serve identically.
pub fn serve(cache: Arc<dyn Cache>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(cache, addr, MAX_CONNECTIONS)
}

/// Decrements the live-connection count when a connection thread exits,
/// however it exits (clean close, I/O error, or panic unwinding).
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Starts a server that serves at most `max_conns` connections at a time.
pub fn serve_with(
    cache: Arc<dyn Cache>,
    addr: &str,
    max_conns: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let active = Arc::new(AtomicUsize::new(0));
    let join = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = conn else { continue };
            // Reserve a slot before spawning; over the cap, refuse without
            // spawning so a connection burst cannot exhaust OS threads.
            if active.fetch_add(1, Ordering::SeqCst) >= max_conns {
                active.fetch_sub(1, Ordering::SeqCst);
                cache.metrics().inc(Counter::ConnRejected);
                let _ = stream.write_all(b"SERVER_ERROR too many connections\r\n");
                continue; // drops (closes) the stream
            }
            let cache = Arc::clone(&cache);
            let guard = ActiveGuard(Arc::clone(&active));
            std::thread::spawn(move || {
                let _guard = guard;
                let _ = handle_connection(stream, cache.as_ref());
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        join: Mutex::new(Some(join)),
    })
}

/// Increments `conn_closed` however the connection ends (quit, hang-up,
/// protocol error, or I/O error unwinding through `?`).
struct ConnGuard<'a>(&'a Metrics);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.inc(Counter::ConnClosed);
    }
}

fn handle_connection(mut stream: TcpStream, cache: &dyn Cache) -> std::io::Result<()> {
    let metrics = Arc::clone(cache.metrics());
    metrics.inc(Counter::ConnOpened);
    let _guard = ConnGuard(&metrics);
    stream.set_nodelay(true)?;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        match parse(&buf) {
            Ok((
                Command::Set {
                    key,
                    flags,
                    data,
                    noreply,
                },
                used,
            )) => {
                buf.drain(..used);
                // Coalesce the pipelined sets already buffered into one
                // batched cache call; responses stay in command order
                // because every coalesced command is a set.
                let mut sets = vec![(key, flags, data, noreply)];
                while sets.len() < SET_BATCH_MAX {
                    let Ok((
                        Command::Set {
                            key,
                            flags,
                            data,
                            noreply,
                        },
                        used,
                    )) = parse(&buf)
                    else {
                        break;
                    };
                    buf.drain(..used);
                    sets.push((key, flags, data, noreply));
                }
                metrics.add(Counter::CmdSet, sets.len() as u64);
                let mut resp = Vec::new();
                for (_, _, _, noreply) in &sets {
                    if !noreply {
                        resp.extend_from_slice(b"STORED\r\n");
                    }
                }
                if sets.len() == 1 {
                    let (key, flags, data, _) = sets.pop().expect("one set");
                    cache.set(&key, flags, data);
                } else {
                    cache.set_batch(sets.into_iter().map(|(k, f, d, _)| (k, f, d)).collect());
                }
                metrics.add(Counter::BytesWritten, resp.len() as u64);
                stream.write_all(&resp)?;
            }
            Ok((cmd, used)) => {
                buf.drain(..used);
                if matches!(cmd, Command::Quit) {
                    return Ok(());
                }
                let resp = execute(cache, &cmd);
                metrics.add(Counter::BytesWritten, resp.len() as u64);
                stream.write_all(&resp)?;
            }
            Err(ParseError::Incomplete) => {
                if buf.len() >= MAX_FRAME_BYTES {
                    // The frame can only keep growing; cut the slowloris off.
                    metrics.inc(Counter::CmdBad);
                    metrics.add(Counter::BytesWritten, b"ERROR\r\n".len() as u64);
                    stream.write_all(b"ERROR\r\n")?;
                    return Ok(());
                }
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(()); // client hung up
                }
                metrics.add(Counter::BytesRead, n as u64);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(ParseError::Bad(_)) => {
                metrics.inc(Counter::CmdBad);
                metrics.add(Counter::BytesWritten, b"ERROR\r\n".len() as u64);
                stream.write_all(b"ERROR\r\n")?;
                return Ok(());
            }
        }
    }
}

/// A minimal blocking client for tests and examples.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// SET; waits for `STORED`.
    pub fn set(&mut self, key: &str, data: &[u8]) -> std::io::Result<()> {
        let mut msg = format!("set {key} 0 0 {}\r\n", data.len()).into_bytes();
        msg.extend_from_slice(data);
        msg.extend_from_slice(b"\r\n");
        self.stream.write_all(&msg)?;
        self.read_line()?; // STORED
        Ok(())
    }

    /// GET; returns the value if present.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.stream.write_all(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        if header == b"END" {
            return Ok(None);
        }
        // VALUE <key> <flags> <bytes>
        let text = String::from_utf8_lossy(&header).to_string();
        let bytes: usize = text
            .split_ascii_whitespace()
            .nth(3)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other("bad VALUE header"))?;
        while self.buf.len() < bytes + 2 {
            self.fill()?;
        }
        let data = self.buf[..bytes].to_vec();
        self.buf.drain(..bytes + 2);
        self.read_line()?; // END
        Ok(Some(data))
    }

    /// Multi-key GET (`get k1 k2 ...`); returns the present keys as
    /// `(key, value)` pairs in request order.
    pub fn get_multi(&mut self, keys: &[&str]) -> std::io::Result<Vec<(String, Vec<u8>)>> {
        self.stream
            .write_all(format!("get {}\r\n", keys.join(" ")).as_bytes())?;
        let mut out = Vec::new();
        loop {
            let header = self.read_line()?;
            if header == b"END" {
                return Ok(out);
            }
            // VALUE <key> <flags> <bytes>
            let text = String::from_utf8_lossy(&header).to_string();
            let mut parts = text.split_ascii_whitespace();
            let (Some("VALUE"), Some(key), _, Some(bytes)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(std::io::Error::other("bad VALUE header"));
            };
            let bytes: usize = bytes
                .parse()
                .map_err(|_| std::io::Error::other("bad VALUE length"))?;
            while self.buf.len() < bytes + 2 {
                self.fill()?;
            }
            let data = self.buf[..bytes].to_vec();
            self.buf.drain(..bytes + 2);
            out.push((key.to_string(), data));
        }
    }

    /// SCAN; returns up to `count` `(key, value)` pairs with keys
    /// `>= start`, in key order. Errors if the server's index cannot scan.
    pub fn scan(&mut self, start: &str, count: usize) -> std::io::Result<Vec<(String, Vec<u8>)>> {
        self.stream
            .write_all(format!("scan {start} {count}\r\n").as_bytes())?;
        let mut out = Vec::new();
        loop {
            let header = self.read_line()?;
            if header == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&header).to_string();
            if text.starts_with("SERVER_ERROR") {
                return Err(std::io::Error::other(text));
            }
            // VALUE <key> <flags> <bytes>
            let mut parts = text.split_ascii_whitespace();
            let (Some("VALUE"), Some(key), _, Some(bytes)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(std::io::Error::other("bad VALUE header"));
            };
            let bytes: usize = bytes
                .parse()
                .map_err(|_| std::io::Error::other("bad VALUE length"))?;
            while self.buf.len() < bytes + 2 {
                self.fill()?;
            }
            let data = self.buf[..bytes].to_vec();
            self.buf.drain(..bytes + 2);
            out.push((key.to_string(), data));
        }
    }

    /// VERSION; returns the server's banner line, e.g.
    /// `VERSION fptree-kvcache/0.1.0 proto 2`.
    pub fn version(&mut self) -> std::io::Result<String> {
        self.stream.write_all(b"version\r\n")?;
        let line = self.read_line()?;
        Ok(String::from_utf8_lossy(&line).into_owned())
    }

    /// STATS; returns the `STAT <name> <value>` pairs in server order.
    /// Values stay strings because memcached stats mix numbers and text
    /// (e.g. `STAT version 0.1.0`).
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        self.stream.write_all(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&line).to_string();
            let mut parts = text.split_ascii_whitespace();
            let (Some("STAT"), Some(name), Some(value), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(std::io::Error::other(format!("bad STAT line: {text}")));
            };
            out.push((name.to_string(), value.to_string()));
        }
    }

    /// STATS RESET; zeroes the server-side counters.
    pub fn stats_reset(&mut self) -> std::io::Result<()> {
        self.stream.write_all(b"stats reset\r\n")?;
        let line = self.read_line()?;
        if line == b"RESET" {
            Ok(())
        } else {
            Err(std::io::Error::other("expected RESET"))
        }
    }

    fn read_line(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let line = self.buf[..pos].to_vec();
                self.buf.drain(..pos + 2);
                return Ok(line);
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("connection closed"));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvCache;
    use fptree_baselines::HashIndex;

    #[test]
    fn end_to_end_over_tcp() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        client.set("alpha", b"one").unwrap();
        client.set("beta", b"two").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"one".to_vec()));
        assert_eq!(client.get("beta").unwrap(), Some(b"two".to_vec()));
        assert_eq!(client.get("gamma").unwrap(), None);
        // Overwrite.
        client.set("alpha", b"uno").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"uno".to_vec()));
        server.shutdown();
    }

    #[test]
    fn scan_over_tcp_with_tree_index() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let cache = Arc::new(KvCache::new(Arc::new(Locked::new(tree))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        for i in (0..50).rev() {
            client
                .set(&format!("user:{i:03}"), format!("v{i}").as_bytes())
                .unwrap();
        }
        let items = client.scan("user:010", 4).unwrap();
        let keys: Vec<_> = items.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["user:010", "user:011", "user:012", "user:013"]);
        assert_eq!(items[0].1, b"v10".to_vec());
        // Scan past the last key returns the tail, not an error.
        assert_eq!(client.scan("user:048", 10).unwrap().len(), 2);
        server.shutdown();
    }

    #[test]
    fn scan_on_hash_index_is_an_error() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        client.set("k", b"v").unwrap();
        assert!(client.scan("a", 5).is_err());
        // The connection stays usable after the SERVER_ERROR line.
        assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
        server.shutdown();
    }

    #[test]
    fn noreply_pipelining_over_tcp() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr).unwrap();
        // Pipeline noreply sets + a final get; only the get answers.
        let mut msg = Vec::new();
        for i in 0..10 {
            msg.extend_from_slice(format!("set k{i} 0 0 2 noreply\r\nv{i}\r\n").as_bytes());
        }
        msg.extend_from_slice(b"get k7\r\n");
        stream.write_all(&msg).unwrap();
        let mut resp = Vec::new();
        let mut chunk = [0u8; 1024];
        while !resp.ends_with(b"END\r\n") {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed before responding");
            resp.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(resp, b"VALUE k7 0 2\r\nv7\r\nEND\r\n");
        assert_eq!(cache.len(), 10);
        server.shutdown();
    }

    #[test]
    fn multi_key_get_over_tcp() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let cache = Arc::new(KvCache::new(Arc::new(Locked::new(tree))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        for i in 0..20 {
            client
                .set(&format!("k{i:02}"), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Present keys come back as consecutive VALUE blocks before END,
        // in request order; the absent key is skipped.
        let items = client.get_multi(&["k07", "missing", "k01", "k19"]).unwrap();
        assert_eq!(
            items,
            vec![
                ("k07".to_string(), b"v7".to_vec()),
                ("k01".to_string(), b"v1".to_vec()),
                ("k19".to_string(), b"v19".to_vec()),
            ]
        );
        // All-absent multi-get: bare END.
        assert!(client.get_multi(&["x", "y"]).unwrap().is_empty());
        server.shutdown();
    }

    #[test]
    fn pipelined_sets_are_batched() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let cache = Arc::new(KvCache::new(Arc::new(Locked::new(tree))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr).unwrap();
        // One write carrying many sets: the server coalesces whatever is
        // buffered into set_batch calls. Mixed noreply and replied sets
        // must still answer exactly the replied ones, in order.
        let mut msg = Vec::new();
        for i in 0..40 {
            let nr = if i % 2 == 0 { " noreply" } else { "" };
            msg.extend_from_slice(format!("set b{i:02} 0 0 3{nr}\r\nv{i:02}\r\n").as_bytes());
        }
        msg.extend_from_slice(b"quit\r\n");
        stream.write_all(&msg).unwrap();
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        let expect: Vec<u8> = std::iter::repeat_n(b"STORED\r\n".to_vec(), 20)
            .flatten()
            .collect();
        assert_eq!(resp, expect);
        assert_eq!(cache.len(), 40);
        for i in 0..40 {
            let (_, v) = cache.get(format!("b{i:02}").as_bytes()).unwrap();
            assert_eq!(v, format!("v{i:02}").into_bytes());
        }
        if fptree_core::Metrics::enabled() {
            let snap = cache.stats_snapshot();
            assert_eq!(snap.get("cmd_set"), Some(40));
            // At least some of the load went through the batched tree path.
            let batched = snap.get("insert_batch_keys").unwrap_or(0);
            assert!(batched > 0, "pipelined sets never hit insert_batch");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        server.shutdown();
        // Second explicit call and the implicit Drop are both no-ops; the
        // listener is already gone so the nudge sees ConnectionRefused.
        server.shutdown();
        drop(server);
    }

    #[test]
    fn stats_over_tcp_reports_live_counters() {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        let cache = Arc::new(KvCache::new(Arc::new(Locked::new(tree))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr).unwrap();

        let banner = client.version().unwrap();
        assert!(banner.starts_with("VERSION fptree-kvcache/"));

        client.set("alpha", b"one").unwrap();
        client.set("beta", b"two").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"one".to_vec()));
        assert_eq!(client.get("missing").unwrap(), None);

        let stats = client.stats().unwrap();
        let field = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("curr_items"), Some("2".to_string()));
        assert!(field("protocol").is_some());
        if fptree_core::Metrics::enabled() {
            assert_eq!(field("cmd_set"), Some("2".to_string()));
            assert_eq!(field("cmd_get"), Some("2".to_string()));
            assert_eq!(field("cache_hits"), Some("1".to_string()));
            assert_eq!(field("cache_misses"), Some("1".to_string()));
            assert_eq!(field("conn_opened"), Some("1".to_string()));
            // The tree's metrics ride along in the same snapshot. The cache
            // issues extra tree GETs internally (swap_handle), so `get_ops`
            // exceeds the two client GETs.
            assert_eq!(field("insert_ops"), Some("2".to_string()));
            let get_ops: u64 = field("get_ops").unwrap().parse().unwrap();
            assert!(get_ops >= 2);
            assert!(field("pmem_allocs").is_some());
            let read: u64 = field("bytes_read").unwrap().parse().unwrap();
            assert!(read > 0, "bytes_read should count request bytes");
        }

        client.stats_reset().unwrap();
        let stats = client.stats().unwrap();
        let zeroed = stats
            .iter()
            .find(|(n, _)| n == "cmd_set")
            .map(|(_, v)| v.clone());
        assert_eq!(zeroed, Some("0".to_string()));
        server.shutdown();
    }

    #[test]
    fn bad_command_counts_and_errors() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream.write_all(b"frobnicate\r\n").unwrap();
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        assert_eq!(resp, b"ERROR\r\n");
        if fptree_core::Metrics::enabled() {
            // The connection thread may still be mid-teardown; the counter
            // was bumped before the ERROR line was written.
            assert_eq!(cache.stats_snapshot().get("cmd_bad"), Some(1));
        }
        server.shutdown();
    }

    #[test]
    fn slowloris_frame_is_capped() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr).unwrap();
        // One endless unterminated line: the parser stays Incomplete while
        // the buffer grows, so the server must answer ERROR and hang up at
        // MAX_FRAME_BYTES instead of buffering without limit.
        let chunk = [b'x'; 4096];
        let mut sent = 0;
        while sent < MAX_FRAME_BYTES {
            stream.write_all(&chunk).unwrap();
            sent += chunk.len();
        }
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        assert_eq!(resp, b"ERROR\r\n");
        if fptree_core::Metrics::enabled() {
            assert_eq!(cache.stats_snapshot().get("cmd_bad"), Some(1));
        }
        server.shutdown();
    }

    #[test]
    fn connection_cap_bounds_threads() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve_with(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0", 2).unwrap();
        let mut held: Vec<Client> = (0..2)
            .map(|_| Client::connect(server.addr).unwrap())
            .collect();
        for c in &mut held {
            c.version().unwrap(); // both slots demonstrably serving
        }
        // A burst past the cap: every extra connection is refused with
        // SERVER_ERROR and closed, without spawning a serving thread.
        for _ in 0..6 {
            let mut s = TcpStream::connect(server.addr).unwrap();
            let mut resp = Vec::new();
            s.read_to_end(&mut resp).unwrap();
            assert_eq!(resp, b"SERVER_ERROR too many connections\r\n");
        }
        if fptree_core::Metrics::enabled() {
            let snap = cache.stats_snapshot();
            // conn_opened counts handle_connection entries, i.e. spawned
            // serving threads: exactly the two held connections.
            assert_eq!(snap.get("conn_opened"), Some(2));
            assert_eq!(snap.get("conn_rejected"), Some(6));
        }
        // Closing a connection frees its slot for new clients.
        drop(held.pop());
        let ok = (0..200).any(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Client::connect(server.addr).is_ok_and(|mut c| c.version().is_ok())
        });
        assert!(ok, "slot was not released after a connection closed");
        server.shutdown();
    }

    #[test]
    fn many_clients() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))));
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let addr = server.addr;
        let handles: Vec<_> = (0..4)
            .map(|t: u32| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for i in 0..200 {
                        let key = format!("t{t}k{i}");
                        c.set(&key, format!("v{i}").as_bytes()).unwrap();
                        assert_eq!(c.get(&key).unwrap(), Some(format!("v{i}").into_bytes()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 800);
        server.shutdown();
    }
}
