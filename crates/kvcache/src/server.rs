//! TCP front-end: a readiness-polled event-loop memcached-protocol server.
//!
//! One acceptor/poll thread owns every connection as a registered
//! nonblocking socket with a per-connection state machine (read buffer →
//! [`crate::protocol`] parser → response queue); a small worker pool
//! executes the cache operations. Connections are therefore cheap slots
//! instead of OS threads, so the server sustains thousands of them — the
//! `fig14_connscale` benchmark sweeps connection counts past the old
//! thread-per-connection cap. Responses for a pipelined batch accumulate
//! into contiguous blocks and flush as scatter-gather vectored writes, so
//! pipelined `set`-coalescing (→ [`Cache::set_batch`]) and multi-get stay
//! the natural batch units. Backpressure: a connection whose write queue
//! exceeds its cap stops being read until the client drains responses
//! (`evloop_queue_stalls`); idle connections are reaped after
//! [`ServerBuilder::idle_timeout`] (`conn_idle_closed`); shutdown drains
//! in-flight responses before closing.
//!
//! Construct servers with [`ServerBuilder`]; the positional [`serve`] /
//! [`serve_with`] entry points remain as deprecated wrappers.
//!
//! The mc-benchmark harness still defaults to in-process calls with a
//! modeled network cost (see [`crate::mcbench`]) because the paper's
//! finding under test is that the *network* is the bottleneck, not
//! loopback throughput.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fptree_core::metrics::{Counter, Metrics};
use mio::net::{TcpListener, TcpStream};
use mio::{Events, Interest, Poll, Token, Waker};

use crate::cache::Cache;
use crate::protocol::{execute_into, parse, Command, ParseError};

/// Upper bound on one connection's unparsed request buffer. A client that
/// streams bytes without ever completing a frame (a slowloris, or a `set`
/// announcing an absurd byte count) is answered `ERROR` and disconnected
/// instead of growing the buffer without limit. Sized above memcached's
/// traditional 1 MiB item ceiling so every legitimate frame still fits.
pub const MAX_FRAME_BYTES: usize = (1 << 20) + 4096;

/// Most consecutive pipelined `set` commands coalesced into one
/// [`Cache::set_batch`] call. A client that pipelines its load phase
/// (memcached `noreply` style) gets the tree's amortized batched write path
/// — one flush/fence set per touched leaf — instead of a full persistence
/// round per key.
pub const SET_BATCH_MAX: usize = 64;

/// Default cap on concurrently served connections. Connections are poll
/// slots, not threads, so [`ServerBuilder::max_connections`] can raise this
/// far higher; accepts beyond the cap are answered
/// `SERVER_ERROR too many connections` and closed, counted under
/// `conn_rejected`.
pub const MAX_CONNECTIONS: usize = 1024;

/// Default [`ServerBuilder::idle_timeout`]: how long a connection may sit
/// with no traffic and no pending work before it is reaped
/// (`conn_idle_closed`).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Default [`ServerBuilder::write_queue_cap`] in bytes: once a connection
/// has this much queued unsent response data, the server stops reading
/// from it until the client drains (`evloop_queue_stalls`).
pub const DEFAULT_WRITE_QUEUE_CAP: usize = 1 << 20;

/// Most parsed commands dispatched to the worker pool per batch; what the
/// client pipelined beyond this waits for the next completion (bounds
/// per-batch memory without extra syscalls).
const MAX_BATCH_CMDS: usize = 256;

/// How long shutdown waits for in-flight responses to drain before closing
/// the remaining connections.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(2);

const LISTENER_TOKEN: Token = Token(usize::MAX);
const WAKER_TOKEN: Token = Token(usize::MAX - 1);

/// Builds and starts the event-loop server (mirrors the
/// `fptree_core::TreeBuilder` facade: fluent settings, validation up
/// front, one terminal call).
///
/// ```no_run
/// # use std::sync::Arc;
/// # use fptree_kvcache::{Cache, KvCache, ServerBuilder};
/// # use fptree_baselines::HashIndex;
/// let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(16))));
/// let server = ServerBuilder::new("127.0.0.1:0")
///     .max_connections(8192)
///     .worker_threads(4)
///     .idle_timeout(std::time::Duration::from_secs(60))
///     .serve(cache as Arc<dyn Cache>)
///     .expect("bind");
/// println!("serving on {}", server.addr);
/// server.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    addr: String,
    max_connections: usize,
    worker_threads: usize,
    idle_timeout: Duration,
    max_frame_bytes: usize,
    write_queue_cap: usize,
}

impl ServerBuilder {
    /// Starts a builder for a server on `addr` (e.g. `"127.0.0.1:0"`).
    pub fn new(addr: impl Into<String>) -> ServerBuilder {
        ServerBuilder {
            addr: addr.into(),
            max_connections: MAX_CONNECTIONS,
            worker_threads: default_worker_threads(),
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            max_frame_bytes: MAX_FRAME_BYTES,
            write_queue_cap: DEFAULT_WRITE_QUEUE_CAP,
        }
    }

    /// Cap on concurrently served connections (default
    /// [`MAX_CONNECTIONS`]). Accepts beyond the cap are answered
    /// `SERVER_ERROR too many connections` and closed.
    pub fn max_connections(mut self, n: usize) -> ServerBuilder {
        self.max_connections = n;
        self
    }

    /// Worker threads executing cache operations (default: available
    /// parallelism, capped at 8). The poll thread is separate.
    pub fn worker_threads(mut self, n: usize) -> ServerBuilder {
        self.worker_threads = n;
        self
    }

    /// Reap connections idle (no traffic, no pending work) this long
    /// (default [`DEFAULT_IDLE_TIMEOUT`]). Must be positive; use a large
    /// value to effectively disable reaping.
    pub fn idle_timeout(mut self, d: Duration) -> ServerBuilder {
        self.idle_timeout = d;
        self
    }

    /// Cap on one connection's unparsed request buffer (default
    /// [`MAX_FRAME_BYTES`]); an over-long frame is answered `ERROR` and
    /// the connection closed.
    pub fn max_frame_bytes(mut self, n: usize) -> ServerBuilder {
        self.max_frame_bytes = n;
        self
    }

    /// Per-connection cap in bytes on queued unsent responses (default
    /// [`DEFAULT_WRITE_QUEUE_CAP`]); past it the connection stops being
    /// read until the client drains (backpressure).
    pub fn write_queue_cap(mut self, n: usize) -> ServerBuilder {
        self.write_queue_cap = n;
        self
    }

    fn validate(&self) -> io::Result<()> {
        let invalid = |msg: String| Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
        if self.max_connections == 0 {
            return invalid("max_connections must be at least 1".into());
        }
        if self.worker_threads == 0 {
            return invalid("worker_threads must be at least 1".into());
        }
        if self.idle_timeout.is_zero() {
            return invalid("idle_timeout must be positive (use a large value to disable)".into());
        }
        if self.max_frame_bytes < 1024 {
            return invalid(format!(
                "max_frame_bytes must be at least 1024, got {}",
                self.max_frame_bytes
            ));
        }
        if self.write_queue_cap < 1024 {
            return invalid(format!(
                "write_queue_cap must be at least 1024, got {}",
                self.write_queue_cap
            ));
        }
        Ok(())
    }

    /// Validates the settings, binds, and starts the server.
    pub fn serve(self, cache: Arc<dyn Cache>) -> io::Result<ServerHandle> {
        self.validate()?;
        let listener = std::net::TcpListener::bind(&self.addr)?;
        let addr = listener.local_addr()?;
        let mut listener = TcpListener::from_std(listener);

        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOKEN)?);
        poll.registry()
            .register(&mut listener, LISTENER_TOKEN, Interest::READABLE)?;

        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(WorkerShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            done: Mutex::new(Vec::new()),
            waker: Arc::clone(&waker),
        });
        let workers = (0..self.worker_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("kvcache-worker-{i}"))
                    .spawn(move || worker_loop(&shared, cache.as_ref()))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("kvcache-evloop".into())
            .spawn(move || {
                let mut lp = EventLoop {
                    cfg: self,
                    metrics: Arc::clone(cache.metrics()),
                    poll,
                    listener: Some(listener),
                    conns: Vec::new(),
                    free: Vec::new(),
                    active: 0,
                    shared,
                    workers,
                    stop: stop2,
                };
                lp.run();
            })?;

        Ok(ServerHandle {
            addr,
            stop,
            waker,
            join: Mutex::new(Some(join)),
        })
    }
}

fn default_worker_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Handle to a running server. [`ServerHandle::shutdown`] stops it
/// explicitly; dropping the handle shuts it down too.
pub struct ServerHandle {
    /// Address the server actually bound (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// Signals the event loop to stop, waits for in-flight responses to
    /// drain (bounded), and joins every server thread. Idempotent: calling
    /// again (or dropping after a call) is a no-op.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let Some(join) = self.join.lock().unwrap_or_else(|e| e.into_inner()).take() else {
            return; // already shut down
        };
        let _ = self.waker.wake();
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Starts a server for `cache` on `addr` with the default settings.
#[deprecated(note = "use ServerBuilder::new(addr).serve(cache)")]
pub fn serve(cache: Arc<dyn Cache>, addr: &str) -> io::Result<ServerHandle> {
    ServerBuilder::new(addr).serve(cache)
}

/// Starts a server that serves at most `max_conns` connections at a time.
#[deprecated(note = "use ServerBuilder::new(addr).max_connections(n).serve(cache)")]
pub fn serve_with(
    cache: Arc<dyn Cache>,
    addr: &str,
    max_conns: usize,
) -> io::Result<ServerHandle> {
    ServerBuilder::new(addr)
        .max_connections(max_conns)
        .serve(cache)
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

enum Work {
    /// Execute a connection's parsed command batch.
    Batch { conn: usize, cmds: Vec<Command> },
    /// Exit the worker loop.
    Shutdown,
}

struct Done {
    conn: usize,
    resp: Vec<u8>,
}

struct WorkerShared {
    queue: Mutex<VecDeque<Work>>,
    available: Condvar,
    done: Mutex<Vec<Done>>,
    waker: Arc<Waker>,
}

fn worker_loop(shared: &WorkerShared, cache: &dyn Cache) {
    loop {
        let work = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(w) = q.pop_front() {
                    break w;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match work {
            Work::Shutdown => return,
            Work::Batch { conn, cmds } => {
                let resp = run_batch(cache, cmds);
                shared
                    .done
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Done { conn, resp });
                let _ = shared.waker.wake();
            }
        }
    }
}

/// Executes one connection's command batch, rendering every response into
/// one contiguous block (the scatter-gather unit). Runs of consecutive
/// `set`s coalesce into [`Cache::set_batch`] calls — responses stay in
/// command order because every coalesced command is a set.
fn run_batch(cache: &dyn Cache, cmds: Vec<Command>) -> Vec<u8> {
    let metrics = Arc::clone(cache.metrics());
    let mut resp = Vec::new();
    let mut it = cmds.into_iter().peekable();
    while let Some(cmd) = it.next() {
        let Command::Set {
            key,
            flags,
            data,
            noreply,
        } = cmd
        else {
            execute_into(cache, &cmd, &mut resp);
            continue;
        };
        let mut sets = vec![(key, flags, data, noreply)];
        while sets.len() < SET_BATCH_MAX && matches!(it.peek(), Some(Command::Set { .. })) {
            let Some(Command::Set {
                key,
                flags,
                data,
                noreply,
            }) = it.next()
            else {
                unreachable!("peeked a set");
            };
            sets.push((key, flags, data, noreply));
        }
        metrics.add(Counter::CmdSet, sets.len() as u64);
        for (_, _, _, noreply) in &sets {
            if !noreply {
                resp.extend_from_slice(b"STORED\r\n");
            }
        }
        if sets.len() == 1 {
            let (key, flags, data, _) = sets.pop().expect("one set");
            cache.set(&key, flags, data);
        } else {
            cache.set_batch(sets.into_iter().map(|(k, f, d, _)| (k, f, d)).collect());
        }
    }
    resp
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Queued response blocks, oldest first.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already written (partial-write resume point).
    out_head: usize,
    /// Total unwritten bytes across `out`.
    out_bytes: usize,
    /// Last traffic (read progress or batch completion), for idle reaping.
    last_activity: Instant,
    /// A command batch is at the workers. At most one batch is in flight
    /// per connection, which keeps responses in order; reads continue
    /// (bytes queue in `buf`) but nothing new dispatches until it returns.
    busy: bool,
    /// Close once `out` drains and no batch is in flight (quit, EOF, or
    /// protocol error).
    closing: bool,
    /// Reads paused: the write queue crossed its cap (backpressure).
    stalled: bool,
    /// A protocol error is pending behind the in-flight batch; emit
    /// `ERROR` after its responses, then close.
    error_after_batch: bool,
    /// Interest currently registered with the poller (`None` = none).
    registered: Option<Interest>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::with_capacity(4096),
            out: VecDeque::new(),
            out_head: 0,
            out_bytes: 0,
            last_activity: Instant::now(),
            busy: false,
            closing: false,
            stalled: false,
            error_after_batch: false,
            registered: Some(Interest::READABLE),
        }
    }

    fn enqueue(&mut self, resp: Vec<u8>) {
        if !resp.is_empty() {
            self.out_bytes += resp.len();
            self.out.push_back(resp);
        }
    }
}

struct EventLoop {
    cfg: ServerBuilder,
    metrics: Arc<Metrics>,
    poll: Poll,
    /// Dropped (stops accepting) once shutdown begins.
    listener: Option<TcpListener>,
    /// Connection slab: `Token(i)` ↔ `conns[i]`.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    active: usize,
    shared: Arc<WorkerShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        let tick = (self.cfg.idle_timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(100));
        let mut draining: Option<Instant> = None;
        let mut next_sweep = Instant::now() + tick;
        loop {
            if self.poll.poll(&mut events, Some(tick)).is_err() {
                break;
            }
            if !events.is_empty() {
                self.metrics.inc(Counter::EvloopWakeups);
            }
            let ready: Vec<(Token, bool, bool)> = events
                .iter()
                .map(|e| (e.token(), e.is_readable(), e.is_writable()))
                .collect();
            for (token, readable, writable) in ready {
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => {} // edge-triggered eventfd: nothing to drain
                    Token(id) => {
                        if readable {
                            self.conn_readable(id);
                        }
                        if writable {
                            self.conn_writable(id);
                        }
                    }
                }
            }
            self.collect_done();
            // The sweep walks every connection slot, so under load it runs
            // on its tick, not on every wakeup.
            let now = Instant::now();
            if now >= next_sweep {
                self.sweep_idle();
                next_sweep = now + tick;
            }
            if self.stop.load(Ordering::SeqCst) {
                let deadline =
                    *draining.get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN);
                // Stop accepting; in-flight work keeps draining until every
                // connection has flushed or the deadline passes.
                if let Some(mut l) = self.listener.take() {
                    let _ = self.poll.registry().deregister(&mut l);
                }
                let drained = self
                    .conns
                    .iter()
                    .flatten()
                    .all(|c| !c.busy && c.out_bytes == 0);
                if drained || Instant::now() >= deadline {
                    break;
                }
            }
        }
        for id in 0..self.conns.len() {
            if self.conns[id].is_some() {
                self.close_conn(id);
            }
        }
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..self.workers.len() {
                q.push_back(Work::Shutdown);
            }
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.active >= self.cfg.max_connections
                        || self.stop.load(Ordering::SeqCst)
                    {
                        self.metrics.inc(Counter::ConnRejected);
                        let mut stream = stream;
                        // Best-effort refusal: a fresh socket's send buffer
                        // is empty, so this short line won't block.
                        let _ = stream.write(b"SERVER_ERROR too many connections\r\n");
                        continue; // drops (closes) the stream
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let mut conn = Conn::new(stream);
                    if self
                        .poll
                        .registry()
                        .register(&mut conn.stream, Token(id), Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(id);
                        continue;
                    }
                    self.conns[id] = Some(conn);
                    self.active += 1;
                    self.metrics.inc(Counter::ConnOpened);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_readable(&mut self, id: usize) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                return;
            };
            // Keep reading while a batch is at the workers: draining the
            // socket keeps level-triggered polling quiet (no interest
            // churn); the bytes just wait in `buf` until the batch
            // completes. Only stalls and the frame cap stop reads.
            if conn.stalled || conn.closing {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: serve out what's pending, then close.
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    self.metrics.add(Counter::BytesRead, n as u64);
                    let conn = self.conns[id].as_mut().expect("checked above");
                    conn.last_activity = Instant::now();
                    conn.buf.extend_from_slice(&chunk[..n]);
                    // Enough buffered for a full dispatch round: stop the
                    // read loop so one firehose client can't monopolize.
                    if conn.buf.len() >= self.cfg.max_frame_bytes {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(id);
                    return;
                }
            }
        }
        self.dispatch(id);
        self.flush(id);
        self.after_io(id);
    }

    fn conn_writable(&mut self, id: usize) {
        self.flush(id);
        self.after_io(id);
    }

    /// Parses buffered bytes into a command batch and hands it to the
    /// worker pool. At most one batch per connection is in flight.
    fn dispatch(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        if conn.busy {
            return;
        }
        if conn.out_bytes > self.cfg.write_queue_cap {
            if !conn.stalled {
                conn.stalled = true;
                self.metrics.inc(Counter::EvloopQueueStalls);
            }
            return;
        }
        conn.stalled = false;
        let mut cmds = Vec::new();
        let mut error = false;
        while cmds.len() < MAX_BATCH_CMDS && !conn.closing {
            match parse(&conn.buf) {
                Ok((Command::Quit, _)) => {
                    // Respond to everything before the quit, then hang up;
                    // bytes after it are discarded (the client said bye).
                    conn.buf.clear();
                    conn.closing = true;
                }
                Ok((cmd, used)) => {
                    conn.buf.drain(..used);
                    cmds.push(cmd);
                }
                Err(ParseError::Incomplete) => {
                    if conn.buf.len() >= self.cfg.max_frame_bytes {
                        // The frame can only keep growing; cut the
                        // slowloris off.
                        error = true;
                    }
                    break;
                }
                Err(ParseError::Bad(_)) => {
                    error = true;
                    break;
                }
            }
        }
        if error {
            self.metrics.inc(Counter::CmdBad);
            conn.closing = true;
            if cmds.is_empty() {
                conn.enqueue(b"ERROR\r\n".to_vec());
            } else {
                // The ERROR line must follow the good commands' responses,
                // which the worker is about to produce.
                conn.error_after_batch = true;
            }
        }
        if !cmds.is_empty() {
            conn.busy = true;
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(Work::Batch { conn: id, cmds });
            self.shared.available.notify_one();
        }
    }

    /// Collects finished batches from the workers, queues their responses,
    /// and resumes the connections (flush + parse whatever piled up).
    fn collect_done(&mut self) {
        let done = std::mem::take(&mut *self.shared.done.lock().unwrap_or_else(|e| e.into_inner()));
        for Done { conn: id, resp } in done {
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                continue; // connection torn down during shutdown
            };
            conn.busy = false;
            conn.last_activity = Instant::now();
            conn.enqueue(resp);
            if conn.error_after_batch {
                conn.error_after_batch = false;
                conn.enqueue(b"ERROR\r\n".to_vec());
            }
            self.dispatch(id);
            self.flush(id);
            self.after_io(id);
        }
    }

    /// Writes queued responses with one vectored write per pass until the
    /// socket would block or the queue drains.
    fn flush(&mut self, id: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                return;
            };
            if conn.out_bytes == 0 {
                break;
            }
            let mut slices = Vec::with_capacity(conn.out.len().min(64));
            for (i, block) in conn.out.iter().enumerate().take(64) {
                slices.push(IoSlice::new(if i == 0 {
                    &block[conn.out_head..]
                } else {
                    &block[..]
                }));
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => {
                    self.close_conn(id);
                    return;
                }
                Ok(n) => {
                    self.metrics.add(Counter::BytesWritten, n as u64);
                    let mut left = n;
                    while left > 0 {
                        let front_remaining = conn.out.front().expect("bytes queued").len()
                            - conn.out_head;
                        if left >= front_remaining {
                            left -= front_remaining;
                            conn.out_bytes -= front_remaining;
                            conn.out.pop_front();
                            conn.out_head = 0;
                        } else {
                            conn.out_head += left;
                            conn.out_bytes -= left;
                            left = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Socket buffer full with responses still queued: the
                    // remainder waits for the next writability event.
                    self.metrics.inc(Counter::EvloopPartialWrites);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(id);
                    return;
                }
            }
        }
    }

    /// Settles a connection after I/O: close if finished, un-stall if the
    /// queue drained, and re-register the interest set its state wants.
    fn after_io(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        if conn.closing && !conn.busy && conn.out_bytes == 0 {
            self.close_conn(id);
            return;
        }
        if conn.stalled && conn.out_bytes <= self.cfg.write_queue_cap / 2 {
            // Hysteresis: resume reading once the client has drained half
            // the cap, not on the first freed byte.
            conn.stalled = false;
        }
        let want_read =
            !conn.closing && !conn.stalled && conn.buf.len() < self.cfg.max_frame_bytes;
        let want_write = conn.out_bytes > 0;
        let want = match (want_read, want_write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        };
        if want == conn.registered {
            return;
        }
        let registry = self.poll.registry();
        let res = match (conn.registered, want) {
            (Some(_), Some(interest)) => registry.reregister(&mut conn.stream, Token(id), interest),
            (None, Some(interest)) => registry.register(&mut conn.stream, Token(id), interest),
            (Some(_), None) => registry.deregister(&mut conn.stream),
            (None, None) => Ok(()),
        };
        match res {
            Ok(()) => conn.registered = want,
            Err(_) => self.close_conn(id),
        }
    }

    /// Reaps connections that have sat idle — no traffic, no pending work
    /// — longer than the idle timeout.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        for id in 0..self.conns.len() {
            let Some(conn) = self.conns[id].as_ref() else {
                continue;
            };
            if !conn.busy
                && conn.out_bytes == 0
                && now.duration_since(conn.last_activity) >= self.cfg.idle_timeout
            {
                self.metrics.inc(Counter::ConnIdleClosed);
                self.close_conn(id);
            }
        }
    }

    fn close_conn(&mut self, id: usize) {
        let Some(mut conn) = self.conns.get_mut(id).and_then(Option::take) else {
            return;
        };
        if conn.registered.is_some() {
            let _ = self.poll.registry().deregister(&mut conn.stream);
        }
        self.free.push(id);
        self.active -= 1;
        self.metrics.inc(Counter::ConnClosed);
        // `conn.stream` drops (closes) here.
    }
}

/// A minimal blocking client for tests and examples.
pub struct Client {
    stream: std::net::TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// SET; waits for `STORED`.
    pub fn set(&mut self, key: &str, data: &[u8]) -> io::Result<()> {
        let mut msg = format!("set {key} 0 0 {}\r\n", data.len()).into_bytes();
        msg.extend_from_slice(data);
        msg.extend_from_slice(b"\r\n");
        self.stream.write_all(&msg)?;
        self.read_line()?; // STORED
        Ok(())
    }

    /// GET; returns the value if present.
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        self.stream.write_all(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        if header == b"END" {
            return Ok(None);
        }
        // VALUE <key> <flags> <bytes>
        let text = String::from_utf8_lossy(&header).to_string();
        let bytes: usize = text
            .split_ascii_whitespace()
            .nth(3)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::other("bad VALUE header"))?;
        while self.buf.len() < bytes + 2 {
            self.fill()?;
        }
        let data = self.buf[..bytes].to_vec();
        self.buf.drain(..bytes + 2);
        self.read_line()?; // END
        Ok(Some(data))
    }

    /// Multi-key GET (`get k1 k2 ...`); returns the present keys as
    /// `(key, value)` pairs in request order.
    pub fn get_multi(&mut self, keys: &[&str]) -> io::Result<Vec<(String, Vec<u8>)>> {
        self.stream
            .write_all(format!("get {}\r\n", keys.join(" ")).as_bytes())?;
        self.read_values()
    }

    /// SCAN; returns up to `count` `(key, value)` pairs with keys
    /// `>= start`, in key order. Errors if the server's index cannot scan.
    pub fn scan(&mut self, start: &str, count: usize) -> io::Result<Vec<(String, Vec<u8>)>> {
        self.stream
            .write_all(format!("scan {start} {count}\r\n").as_bytes())?;
        self.read_values()
    }

    /// Reads `VALUE` blocks up to `END` (shared by multi-get and scan).
    fn read_values(&mut self) -> io::Result<Vec<(String, Vec<u8>)>> {
        let mut out = Vec::new();
        loop {
            let header = self.read_line()?;
            if header == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&header).to_string();
            if text.starts_with("SERVER_ERROR") {
                return Err(io::Error::other(text));
            }
            // VALUE <key> <flags> <bytes>
            let mut parts = text.split_ascii_whitespace();
            let (Some("VALUE"), Some(key), _, Some(bytes)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(io::Error::other("bad VALUE header"));
            };
            let bytes: usize = bytes
                .parse()
                .map_err(|_| io::Error::other("bad VALUE length"))?;
            while self.buf.len() < bytes + 2 {
                self.fill()?;
            }
            let data = self.buf[..bytes].to_vec();
            self.buf.drain(..bytes + 2);
            out.push((key.to_string(), data));
        }
    }

    /// VERSION; returns the server's banner line, e.g.
    /// `VERSION fptree-kvcache/0.1.0 proto 2`.
    pub fn version(&mut self) -> io::Result<String> {
        self.stream.write_all(b"version\r\n")?;
        let line = self.read_line()?;
        Ok(String::from_utf8_lossy(&line).into_owned())
    }

    /// STATS; returns the `STAT <name> <value>` pairs in server order.
    /// Values stay strings because memcached stats mix numbers and text
    /// (e.g. `STAT version 0.1.0`).
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.stream.write_all(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&line).to_string();
            let mut parts = text.split_ascii_whitespace();
            let (Some("STAT"), Some(name), Some(value), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(io::Error::other(format!("bad STAT line: {text}")));
            };
            out.push((name.to_string(), value.to_string()));
        }
    }

    /// STATS RESET; zeroes the server-side counters.
    pub fn stats_reset(&mut self) -> io::Result<()> {
        self.stream.write_all(b"stats reset\r\n")?;
        let line = self.read_line()?;
        if line == b"RESET" {
            Ok(())
        } else {
            Err(io::Error::other("expected RESET"))
        }
    }

    fn read_line(&mut self) -> io::Result<Vec<u8>> {
        loop {
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let line = self.buf[..pos].to_vec();
                self.buf.drain(..pos + 2);
                return Ok(line);
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::other("connection closed"));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvCache;
    use fptree_baselines::HashIndex;
    use std::net::TcpStream as StdTcpStream;

    fn hash_cache() -> Arc<KvCache> {
        Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(8))))
    }

    fn tree_cache() -> Arc<KvCache> {
        use fptree_core::{Locked, TreeConfig};
        use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
        let tree = fptree_core::FPTreeVar::create(pool, TreeConfig::fptree_var(), ROOT_SLOT);
        Arc::new(KvCache::new(Arc::new(Locked::new(tree))))
    }

    fn start(cache: &Arc<KvCache>) -> ServerHandle {
        ServerBuilder::new("127.0.0.1:0")
            .serve(Arc::clone(cache) as Arc<dyn Cache>)
            .unwrap()
    }

    /// Polls a metrics counter until it reaches `want` — the event loop
    /// finishes teardown (conn_closed, etc.) asynchronously after the
    /// client observes its side of the close.
    fn wait_counter(cache: &KvCache, name: &str, want: u64) -> u64 {
        let mut last = 0;
        for _ in 0..400 {
            last = cache.stats_snapshot().get(name).unwrap_or(0);
            if last >= want {
                return last;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        last
    }

    #[test]
    fn end_to_end_over_tcp() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut client = Client::connect(server.addr).unwrap();
        client.set("alpha", b"one").unwrap();
        client.set("beta", b"two").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"one".to_vec()));
        assert_eq!(client.get("beta").unwrap(), Some(b"two".to_vec()));
        assert_eq!(client.get("gamma").unwrap(), None);
        // Overwrite.
        client.set("alpha", b"uno").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"uno".to_vec()));
        server.shutdown();
    }

    #[test]
    fn builder_validates_settings() {
        let cache = hash_cache();
        for bad in [
            ServerBuilder::new("127.0.0.1:0").max_connections(0),
            ServerBuilder::new("127.0.0.1:0").worker_threads(0),
            ServerBuilder::new("127.0.0.1:0").idle_timeout(Duration::ZERO),
            ServerBuilder::new("127.0.0.1:0").max_frame_bytes(16),
            ServerBuilder::new("127.0.0.1:0").write_queue_cap(0),
        ] {
            let err = bad.serve(Arc::clone(&cache) as Arc<dyn Cache>).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        }
        // A bad address surfaces as the bind error, not a panic.
        assert!(ServerBuilder::new("not-an-address")
            .serve(Arc::clone(&cache) as Arc<dyn Cache>)
            .is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_serve() {
        let cache = hash_cache();
        let server = serve(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        client.set("k", b"v").unwrap();
        assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
        server.shutdown();
        let server =
            serve_with(Arc::clone(&cache) as Arc<dyn Cache>, "127.0.0.1:0", 4).unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        assert!(client.version().unwrap().starts_with("VERSION"));
        server.shutdown();
    }

    #[test]
    fn scan_over_tcp_with_tree_index() {
        let cache = tree_cache();
        let server = start(&cache);
        let mut client = Client::connect(server.addr).unwrap();
        for i in (0..50).rev() {
            client
                .set(&format!("user:{i:03}"), format!("v{i}").as_bytes())
                .unwrap();
        }
        let items = client.scan("user:010", 4).unwrap();
        let keys: Vec<_> = items.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["user:010", "user:011", "user:012", "user:013"]);
        assert_eq!(items[0].1, b"v10".to_vec());
        // Scan past the last key returns the tail, not an error.
        assert_eq!(client.scan("user:048", 10).unwrap().len(), 2);
        server.shutdown();
    }

    #[test]
    fn scan_on_hash_index_is_an_error() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut client = Client::connect(server.addr).unwrap();
        client.set("k", b"v").unwrap();
        assert!(client.scan("a", 5).is_err());
        // The connection stays usable after the SERVER_ERROR line.
        assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
        server.shutdown();
    }

    #[test]
    fn noreply_pipelining_over_tcp() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        // Pipeline noreply sets + a final get; only the get answers.
        let mut msg = Vec::new();
        for i in 0..10 {
            msg.extend_from_slice(format!("set k{i} 0 0 2 noreply\r\nv{i}\r\n").as_bytes());
        }
        msg.extend_from_slice(b"get k7\r\n");
        stream.write_all(&msg).unwrap();
        let mut resp = Vec::new();
        let mut chunk = [0u8; 1024];
        while !resp.ends_with(b"END\r\n") {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed before responding");
            resp.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(resp, b"VALUE k7 0 2\r\nv7\r\nEND\r\n");
        assert_eq!(cache.len(), 10);
        server.shutdown();
    }

    #[test]
    fn multi_key_get_over_tcp() {
        let cache = tree_cache();
        let server = start(&cache);
        let mut client = Client::connect(server.addr).unwrap();
        for i in 0..20 {
            client
                .set(&format!("k{i:02}"), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Present keys come back as consecutive VALUE blocks before END,
        // in request order; the absent key is skipped.
        let items = client.get_multi(&["k07", "missing", "k01", "k19"]).unwrap();
        assert_eq!(
            items,
            vec![
                ("k07".to_string(), b"v7".to_vec()),
                ("k01".to_string(), b"v1".to_vec()),
                ("k19".to_string(), b"v19".to_vec()),
            ]
        );
        // All-absent multi-get: bare END.
        assert!(client.get_multi(&["x", "y"]).unwrap().is_empty());
        server.shutdown();
    }

    #[test]
    fn pipelined_sets_are_batched() {
        let cache = tree_cache();
        let server = start(&cache);
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        // One write carrying many sets: the server coalesces whatever is
        // buffered into set_batch calls. Mixed noreply and replied sets
        // must still answer exactly the replied ones, in order.
        let mut msg = Vec::new();
        for i in 0..40 {
            let nr = if i % 2 == 0 { " noreply" } else { "" };
            msg.extend_from_slice(format!("set b{i:02} 0 0 3{nr}\r\nv{i:02}\r\n").as_bytes());
        }
        msg.extend_from_slice(b"quit\r\n");
        stream.write_all(&msg).unwrap();
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        let expect: Vec<u8> = std::iter::repeat_n(b"STORED\r\n".to_vec(), 20)
            .flatten()
            .collect();
        assert_eq!(resp, expect);
        assert_eq!(cache.len(), 40);
        for i in 0..40 {
            let (_, v) = cache.get(format!("b{i:02}").as_bytes()).unwrap();
            assert_eq!(v, format!("v{i:02}").into_bytes());
        }
        if fptree_core::Metrics::enabled() {
            let snap = cache.stats_snapshot();
            assert_eq!(snap.get("cmd_set"), Some(40));
            // At least some of the load went through the batched tree path.
            let batched = snap.get("insert_batch_keys").unwrap_or(0);
            assert!(batched > 0, "pipelined sets never hit insert_batch");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let cache = hash_cache();
        let server = start(&cache);
        server.shutdown();
        // Second explicit call and the implicit Drop are both no-ops.
        server.shutdown();
        drop(server);
    }

    #[test]
    fn shutdown_drains_pipelined_responses() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        // One synchronous round-trip first, so the server has demonstrably
        // accepted and registered this connection (a connect alone can
        // still be sitting in the accept backlog when shutdown begins).
        stream.write_all(b"set d00 0 0 1\r\nx\r\n").unwrap();
        let mut first = [0u8; 8];
        stream.read_exact(&mut first).unwrap();
        assert_eq!(&first, b"STORED\r\n");
        let mut msg = Vec::new();
        for i in 1..50 {
            msg.extend_from_slice(format!("set d{i:02} 0 0 1\r\nx\r\n").as_bytes());
        }
        stream.write_all(&msg).unwrap();
        // Shut down immediately: every response already in flight must
        // still be delivered before the server closes the connection.
        server.shutdown();
        // The shutdown races the reads: the server answers whatever it
        // *did* read, so 0..=50 STOREDs are all legal — but the stream
        // must be a clean prefix of STOREDs. If the server closed while
        // requests were still unread in its receive queue the close is an
        // RST, which can surface as an error after the delivered bytes.
        let mut resp = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => resp.extend_from_slice(&chunk[..n]),
            }
        }
        let stored = resp
            .windows(b"STORED\r\n".len())
            .filter(|w| w == b"STORED\r\n")
            .count();
        assert_eq!(resp.len(), stored * b"STORED\r\n".len());
        assert!(cache.len() >= stored);
    }

    #[test]
    fn stats_over_tcp_reports_live_counters() {
        let cache = tree_cache();
        let server = start(&cache);
        let mut client = Client::connect(server.addr).unwrap();

        let banner = client.version().unwrap();
        assert!(banner.starts_with("VERSION fptree-kvcache/"));

        client.set("alpha", b"one").unwrap();
        client.set("beta", b"two").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(b"one".to_vec()));
        assert_eq!(client.get("missing").unwrap(), None);

        let stats = client.stats().unwrap();
        let field = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("curr_items"), Some("2".to_string()));
        assert!(field("protocol").is_some());
        if fptree_core::Metrics::enabled() {
            assert_eq!(field("cmd_set"), Some("2".to_string()));
            assert_eq!(field("cmd_get"), Some("2".to_string()));
            assert_eq!(field("cache_hits"), Some("1".to_string()));
            assert_eq!(field("cache_misses"), Some("1".to_string()));
            assert_eq!(field("conn_opened"), Some("1".to_string()));
            // The event loop's own counters ride in the same snapshot.
            let wakeups: u64 = field("evloop_wakeups").unwrap().parse().unwrap();
            assert!(wakeups > 0, "requests must arrive via readiness wakeups");
            // The tree's metrics ride along in the same snapshot. The cache
            // issues extra tree GETs internally (swap_handle), so `get_ops`
            // exceeds the two client GETs.
            assert_eq!(field("insert_ops"), Some("2".to_string()));
            let get_ops: u64 = field("get_ops").unwrap().parse().unwrap();
            assert!(get_ops >= 2);
            assert!(field("pmem_allocs").is_some());
            let read: u64 = field("bytes_read").unwrap().parse().unwrap();
            assert!(read > 0, "bytes_read should count request bytes");
        }

        client.stats_reset().unwrap();
        let stats = client.stats().unwrap();
        let zeroed = stats
            .iter()
            .find(|(n, _)| n == "cmd_set")
            .map(|(_, v)| v.clone());
        assert_eq!(zeroed, Some("0".to_string()));
        server.shutdown();
    }

    #[test]
    fn bad_command_counts_and_errors() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        stream.write_all(b"frobnicate\r\n").unwrap();
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        assert_eq!(resp, b"ERROR\r\n");
        if fptree_core::Metrics::enabled() {
            assert_eq!(cache.stats_snapshot().get("cmd_bad"), Some(1));
        }
        server.shutdown();
    }

    #[test]
    fn error_after_good_pipelined_commands_keeps_order() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        // Two good commands then garbage, all in one write: the responses
        // must arrive in order, ERROR last, then close.
        stream
            .write_all(b"set k 0 0 1\r\nv\r\nget k\r\nfrobnicate\r\n")
            .unwrap();
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        assert_eq!(resp, b"STORED\r\nVALUE k 0 1\r\nv\r\nEND\r\nERROR\r\n");
        server.shutdown();
    }

    #[test]
    fn slowloris_frame_is_capped() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        // One endless unterminated line: the parser stays Incomplete while
        // the buffer grows, so the server must answer ERROR and hang up at
        // MAX_FRAME_BYTES instead of buffering without limit.
        let chunk = [b'x'; 4096];
        let mut sent = 0;
        while sent < MAX_FRAME_BYTES {
            stream.write_all(&chunk).unwrap();
            sent += chunk.len();
        }
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        assert_eq!(resp, b"ERROR\r\n");
        if fptree_core::Metrics::enabled() {
            assert_eq!(cache.stats_snapshot().get("cmd_bad"), Some(1));
        }
        server.shutdown();
    }

    #[test]
    fn byte_at_a_time_requests_and_tiny_chunk_reads() {
        let cache = hash_cache();
        let server = start(&cache);
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        // Drip every request byte individually: the connection state
        // machine must accumulate short reads across readiness events.
        for b in b"set slow 0 0 5\r\nhello\r\nget slow\r\n" {
            stream.write_all(std::slice::from_ref(b)).unwrap();
        }
        // Read the responses one byte at a time too.
        let want = b"STORED\r\nVALUE slow 0 5\r\nhello\r\nEND\r\n";
        let mut got = Vec::new();
        let mut byte = [0u8; 1];
        while got.len() < want.len() {
            let n = stream.read(&mut byte).unwrap();
            assert!(n > 0, "server closed early: {:?}", String::from_utf8_lossy(&got));
            got.extend_from_slice(&byte[..n]);
        }
        assert_eq!(got, want);
        server.shutdown();
    }

    #[test]
    fn idle_connection_is_reaped() {
        let cache = hash_cache();
        let server = ServerBuilder::new("127.0.0.1:0")
            .idle_timeout(Duration::from_millis(100))
            .serve(Arc::clone(&cache) as Arc<dyn Cache>)
            .unwrap();
        // A client that connects and never sends a byte used to hold its
        // slot forever; the idle timeout must reap it.
        let mut silent = StdTcpStream::connect(server.addr).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut resp = Vec::new();
        let n = silent.read_to_end(&mut resp).unwrap(); // EOF once reaped
        assert_eq!(n, 0, "server should close the idle connection silently");
        if fptree_core::Metrics::enabled() {
            assert_eq!(wait_counter(&cache, "conn_idle_closed", 1), 1);
            assert_eq!(wait_counter(&cache, "conn_closed", 1), 1);
        }
        // An active client on the same server is not reaped.
        let mut client = Client::connect(server.addr).unwrap();
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(60));
            client.set("k", b"v").unwrap(); // traffic refreshes the timer
        }
        assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
        server.shutdown();
    }

    #[test]
    fn idle_reap_frees_slot_at_the_connection_cap() {
        let cache = hash_cache();
        let server = ServerBuilder::new("127.0.0.1:0")
            .max_connections(1)
            .idle_timeout(Duration::from_millis(80))
            .serve(Arc::clone(&cache) as Arc<dyn Cache>)
            .unwrap();
        let _silent = StdTcpStream::connect(server.addr).unwrap();
        // The lone slot is held by the silent client; once the reaper runs,
        // a real client gets in.
        let ok = (0..200).any(|_| {
            std::thread::sleep(Duration::from_millis(5));
            Client::connect(server.addr).is_ok_and(|mut c| c.version().is_ok())
        });
        assert!(ok, "idle reap never freed the slot");
        server.shutdown();
    }

    #[test]
    fn backpressure_stalls_and_recovers() {
        let cache = hash_cache();
        let server = ServerBuilder::new("127.0.0.1:0")
            .write_queue_cap(8 * 1024)
            .serve(Arc::clone(&cache) as Arc<dyn Cache>)
            .unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        let value = vec![b'B'; 512 * 1024];
        client.set("big", &value).unwrap();
        // Pipeline 64 gets of a 512 KiB value without reading anything:
        // ~32 MB of responses exceeds what the loopback kernel buffers can
        // absorb (forcing WouldBlock partial writes) and each response
        // alone exceeds the 8 KiB write queue cap (forcing read stalls),
        // so the server must stop reading instead of buffering everything.
        // Then drain and verify nothing was lost or reordered.
        let gets = 64;
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        for _ in 0..gets {
            stream.write_all(b"get big\r\n").unwrap();
        }
        std::thread::sleep(Duration::from_millis(200)); // let queues fill
        stream.write_all(b"quit\r\n").unwrap();
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        let one = {
            let mut b = format!("VALUE big 0 {}\r\n", value.len()).into_bytes();
            b.extend_from_slice(&value);
            b.extend_from_slice(b"\r\nEND\r\n");
            b
        };
        let want: Vec<u8> = std::iter::repeat_n(one, gets).flatten().collect();
        assert_eq!(resp, want);
        if fptree_core::Metrics::enabled() {
            let snap = cache.stats_snapshot();
            assert!(
                snap.get("evloop_queue_stalls").unwrap_or(0) > 0,
                "64 × 16 KiB of queued responses never crossed the 8 KiB cap"
            );
            assert!(
                snap.get("evloop_partial_writes").unwrap_or(0) > 0,
                "an unread client should have produced partial writes"
            );
        }
        server.shutdown();
    }

    #[test]
    fn connection_cap_bounds_slots() {
        let cache = hash_cache();
        let server = ServerBuilder::new("127.0.0.1:0")
            .max_connections(2)
            .serve(Arc::clone(&cache) as Arc<dyn Cache>)
            .unwrap();
        let mut held: Vec<Client> = (0..2)
            .map(|_| Client::connect(server.addr).unwrap())
            .collect();
        for c in &mut held {
            c.version().unwrap(); // both slots demonstrably serving
        }
        // A burst past the cap: every extra connection is refused with
        // SERVER_ERROR and closed, without taking a slot.
        for _ in 0..6 {
            let mut s = StdTcpStream::connect(server.addr).unwrap();
            let mut resp = Vec::new();
            s.read_to_end(&mut resp).unwrap();
            assert_eq!(resp, b"SERVER_ERROR too many connections\r\n");
        }
        if fptree_core::Metrics::enabled() {
            let snap = cache.stats_snapshot();
            // conn_opened counts registered (served) connections: exactly
            // the two held ones; rejects are counted separately.
            assert_eq!(snap.get("conn_opened"), Some(2));
            assert_eq!(snap.get("conn_rejected"), Some(6));
        }
        // Closing a connection frees its slot for new clients.
        drop(held.pop());
        let ok = (0..200).any(|_| {
            std::thread::sleep(Duration::from_millis(5));
            Client::connect(server.addr).is_ok_and(|mut c| c.version().is_ok())
        });
        assert!(ok, "slot was not released after a connection closed");
        server.shutdown();
    }

    #[test]
    fn stats_shards_over_tcp() {
        use crate::ShardedCache;
        use fptree_core::index::BytesIndex;
        let sharded = Arc::new(ShardedCache::new(
            (0..2)
                .map(|_| Arc::new(HashIndex::<Vec<u8>>::new(4)) as Arc<dyn BytesIndex>)
                .collect(),
        ));
        let server = ServerBuilder::new("127.0.0.1:0")
            .serve(Arc::clone(&sharded) as Arc<dyn Cache>)
            .unwrap();
        let mut client = Client::connect(server.addr).unwrap();
        for i in 0..20 {
            client.set(&format!("k{i}"), b"v").unwrap();
        }
        // `stats shards` over the event loop: per-shard sections summing
        // to the total item count.
        let mut stream = StdTcpStream::connect(server.addr).unwrap();
        stream.write_all(b"stats shards\r\nquit\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("STAT shards 2\r\n"));
        assert!(resp.ends_with("END\r\n"));
        let items: u64 = (0..2)
            .map(|i| {
                resp.lines()
                    .find_map(|l| l.strip_prefix(&format!("STAT shard{i}:curr_items ")))
                    .expect("per-shard curr_items line")
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(items, 20);
        server.shutdown();
    }

    #[test]
    fn many_clients() {
        let cache = hash_cache();
        let server = start(&cache);
        let addr = server.addr;
        let handles: Vec<_> = (0..4)
            .map(|t: u32| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for i in 0..200 {
                        let key = format!("t{t}k{i}");
                        c.set(&key, format!("v{i}").as_bytes()).unwrap();
                        assert_eq!(c.get(&key).unwrap(), Some(format!("v{i}").into_bytes()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 800);
        server.shutdown();
    }

    #[test]
    fn hundreds_of_concurrent_connections_on_one_thread() {
        let cache = hash_cache();
        let server = ServerBuilder::new("127.0.0.1:0")
            .max_connections(600)
            .worker_threads(2)
            .serve(Arc::clone(&cache) as Arc<dyn Cache>)
            .unwrap();
        // Hold 512 connections open at once — far beyond what a
        // thread-per-connection server would tolerate in a unit test —
        // and verify every one of them is served.
        let mut clients: Vec<Client> = (0..512)
            .map(|_| Client::connect(server.addr).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.set(&format!("c{i}"), format!("v{i}").as_bytes()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            assert_eq!(
                c.get(&format!("c{i}")).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        assert_eq!(cache.len(), 512);
        if fptree_core::Metrics::enabled() {
            let snap = cache.stats_snapshot();
            assert_eq!(snap.get("conn_opened"), Some(512));
            assert_eq!(snap.get("conn_rejected"), Some(0));
        }
        server.shutdown();
    }
}
