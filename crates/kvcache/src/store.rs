//! Item storage: a sharded slab of cache items.
//!
//! memcached keeps items in a slab allocator and indexes them by a hash
//! table; our trees index `key → item handle` instead, so the item store
//! hands out stable u64 handles. Sharded to keep allocation off the hot
//! lock (memcached's slab lock equivalent).

use parking_lot::Mutex;

/// A stored cache item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Client-provided opaque flags (memcached protocol field).
    pub flags: u32,
    /// The value payload.
    pub data: Vec<u8>,
}

struct Shard {
    slots: Vec<Option<Item>>,
    free: Vec<u32>,
}

/// Sharded slab of items addressed by opaque u64 handles.
pub struct ItemStore {
    shards: Vec<Mutex<Shard>>,
    mask: u64,
}

impl ItemStore {
    /// Creates a store with `shards` lock shards (rounded to a power of 2).
    pub fn new(shards: usize) -> ItemStore {
        let n = shards.next_power_of_two().max(1);
        ItemStore {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(Shard {
                        slots: Vec::new(),
                        free: Vec::new(),
                    })
                })
                .collect(),
            mask: n as u64 - 1,
        }
    }

    /// Stores an item, returning its handle. Handles are never zero.
    pub fn put(&self, item: Item) -> u64 {
        // Spread inserts across shards by a cheap counter-ish source: the
        // item data address has enough entropy here.
        let shard_idx = (item.data.as_ptr() as u64 >> 4) & self.mask;
        let mut shard = self.shards[shard_idx as usize].lock();
        let idx = match shard.free.pop() {
            Some(i) => {
                shard.slots[i as usize] = Some(item);
                i
            }
            None => {
                shard.slots.push(Some(item));
                (shard.slots.len() - 1) as u32
            }
        };
        // handle = [idx:32][shard:31][1] — low bit keeps it nonzero.
        ((idx as u64) << 32) | (shard_idx << 1) | 1
    }

    /// Reads a copy of the item behind `handle`.
    pub fn get(&self, handle: u64) -> Option<Item> {
        let (shard_idx, idx) = Self::split(handle, self.mask)?;
        let shard = self.shards[shard_idx].lock();
        shard.slots.get(idx).and_then(|s| s.clone())
    }

    /// Frees the item behind `handle`.
    pub fn remove(&self, handle: u64) -> Option<Item> {
        let (shard_idx, idx) = Self::split(handle, self.mask)?;
        let mut shard = self.shards[shard_idx].lock();
        let item = shard.slots.get_mut(idx)?.take();
        if item.is_some() {
            shard.free.push(idx as u32);
        }
        item
    }

    fn split(handle: u64, mask: u64) -> Option<(usize, usize)> {
        if handle & 1 == 0 {
            return None;
        }
        let shard = ((handle >> 1) & mask) as usize;
        let idx = (handle >> 32) as usize;
        Some((shard, idx))
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let g = s.lock();
                g.slots.iter().filter(|x| x.is_some()).count()
            })
            .sum()
    }

    /// True if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_remove_roundtrip() {
        let s = ItemStore::new(4);
        let h = s.put(Item {
            flags: 7,
            data: b"hello".to_vec(),
        });
        assert_ne!(h, 0);
        assert_eq!(s.get(h).unwrap().data, b"hello");
        assert_eq!(s.get(h).unwrap().flags, 7);
        let removed = s.remove(h).unwrap();
        assert_eq!(removed.data, b"hello");
        assert!(s.get(h).is_none());
        assert!(s.remove(h).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn handles_are_distinct_and_reusable() {
        let s = ItemStore::new(2);
        let mut handles = Vec::new();
        for i in 0..100u32 {
            handles.push(s.put(Item {
                flags: i,
                data: vec![i as u8],
            }));
        }
        let mut uniq = handles.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 100);
        assert_eq!(s.len(), 100);
        for h in &handles {
            s.remove(*h);
        }
        assert!(s.is_empty());
        let h = s.put(Item {
            flags: 0,
            data: vec![],
        });
        assert!(s.get(h).is_some());
    }

    #[test]
    fn concurrent_puts() {
        let s = Arc::new(ItemStore::new(8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|i| {
                            s.put(Item {
                                flags: t,
                                data: vec![i as u8],
                            })
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8000);
        assert_eq!(s.len(), 8000);
    }
}
