//! mc-benchmark-style driver (Figure 13).
//!
//! The paper runs mc-benchmark (50 clients) against memcached over a
//! 940 Mbit/s network and finds performance *network-bound*: concurrent
//! indexes service requests in parallel and saturate the link (≤2–3%
//! overhead vs. the hash table), while single-threaded trees become the
//! bottleneck on SETs. We reproduce the bottleneck with a modeled
//! per-request network cost (`net_ns`): each simulated client busy-waits
//! that long per request, capping the per-client request rate exactly like
//! a fixed-RTT link; server-side work is the real index operation.

use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use fptree_pmem::busy_wait_ns;

use crate::cache::Cache;

/// Workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct McBenchConfig {
    /// Total SET requests (then the same number of GETs).
    pub requests: usize,
    /// Simulated concurrent clients (threads).
    pub clients: usize,
    /// Distinct keys (mc-benchmark uses a bounded random keyspace).
    pub keyspace: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Modeled per-request network cost in nanoseconds (0 = none).
    pub net_ns: u64,
}

impl Default for McBenchConfig {
    fn default() -> Self {
        McBenchConfig {
            requests: 100_000,
            clients: 50,
            keyspace: 100_000,
            value_size: 32,
            net_ns: 8_000,
        }
    }
}

/// Result of one phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Requests per second.
    pub ops_per_sec: f64,
}

/// SET-phase + GET-phase results.
#[derive(Debug, Clone, Copy)]
pub struct McBenchResult {
    pub set: PhaseResult,
    pub get: PhaseResult,
}

/// Runs the SET-then-GET workload against `cache` (any [`Cache`]:
/// unsharded or sharded).
pub fn run(cache: &dyn Cache, cfg: &McBenchConfig) -> McBenchResult {
    let set = run_phase(cache, cfg, true);
    let get = run_phase(cache, cfg, false);
    McBenchResult { set, get }
}

fn run_phase(cache: &dyn Cache, cfg: &McBenchConfig, is_set: bool) -> PhaseResult {
    let next = Arc::new(AtomicU64::new(0));
    let total = cfg.requests as u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.clients {
            let next = Arc::clone(&next);
            scope.spawn(move || {
                let payload = vec![0x42u8; cfg.value_size];
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    // mc-benchmark key shape: "memtier"-style counter key.
                    let key = format!("key:{:012}", i as usize % cfg.keyspace);
                    if cfg.net_ns > 0 {
                        busy_wait_ns(cfg.net_ns);
                    }
                    if is_set {
                        cache.set(key.as_bytes(), 0, payload.clone());
                    } else {
                        let _ = cache.get(key.as_bytes());
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    PhaseResult {
        requests: cfg.requests,
        secs,
        ops_per_sec: cfg.requests as f64 / secs,
    }
}

/// Configuration for the connection-scaling sweep (`fig14_connscale`):
/// many open TCP connections, driven over real sockets against the
/// event-loop server.
#[derive(Debug, Clone, Copy)]
pub struct ConnScaleConfig {
    /// Open (and exercised) concurrent connections.
    pub conns: usize,
    /// Driver threads; each owns `conns / threads` connections and
    /// round-robins pipelined request windows across them.
    pub threads: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Requests pipelined per window (one write, one response read).
    pub pipeline: usize,
    /// Distinct keys.
    pub keyspace: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Every `set_every`-th window is SETs; the rest are GETs
    /// (0 = GET-only).
    pub set_every: usize,
}

impl Default for ConnScaleConfig {
    fn default() -> Self {
        ConnScaleConfig {
            conns: 64,
            threads: 4,
            requests: 100_000,
            pipeline: 16,
            keyspace: 10_000,
            value_size: 32,
            set_every: 10,
        }
    }
}

/// Result of one connection-scaling run.
#[derive(Debug, Clone, Copy)]
pub struct ConnScaleResult {
    /// Connections actually opened and exercised.
    pub conns: usize,
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock seconds (measured after every connection is open).
    pub secs: f64,
    /// Requests per second.
    pub ops_per_sec: f64,
}

/// Opens `cfg.conns` real TCP connections against the server at `addr`
/// and drives pipelined windows of requests across all of them, measuring
/// aggregate throughput. Every connection stays open for the whole run —
/// the point of the sweep is that throughput holds as open connections
/// grow — and each takes traffic, because windows round-robin across a
/// thread's whole connection set.
pub fn run_connscale(addr: SocketAddr, cfg: &ConnScaleConfig) -> io::Result<ConnScaleResult> {
    assert!(cfg.threads >= 1 && cfg.pipeline >= 1 && cfg.keyspace >= 1);
    let threads = cfg.threads.min(cfg.conns.max(1));
    let per_thread = cfg.conns / threads;
    let conns = per_thread * threads;
    let windows = Arc::new(AtomicU64::new(0));
    let total_windows = (cfg.requests / cfg.pipeline) as u64;
    // All connections open before the clock starts.
    let ready = Arc::new(Barrier::new(threads + 1));
    let payload = vec![0x42u8; cfg.value_size]; // no CR/LF inside
    let mut elapsed = std::time::Duration::ZERO;
    let counts: Vec<u64> = std::thread::scope(|scope| -> io::Result<Vec<u64>> {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let windows = Arc::clone(&windows);
                let ready = Arc::clone(&ready);
                let payload = &payload;
                scope.spawn(move || -> io::Result<u64> {
                    let mut socks = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        let s = std::net::TcpStream::connect(addr)?;
                        s.set_nodelay(true)?;
                        socks.push(s);
                    }
                    // Handshake every socket before the clock starts: a
                    // connect() alone only reaches the kernel backlog, so
                    // without this the server would still be accepting and
                    // registering thousands of sockets inside the timed
                    // window (and a socket over the server's connection cap
                    // would silently count as "open").
                    for s in &mut socks {
                        s.write_all(b"version\r\n")?;
                        let mut b = [0u8; 1];
                        loop {
                            if s.read(&mut b)? == 0 {
                                return Err(io::Error::other(
                                    "server closed during handshake (connection cap?)",
                                ));
                            }
                            if b[0] == b'\n' {
                                break;
                            }
                        }
                    }
                    ready.wait();
                    let mut completed = 0u64;
                    let mut resp = vec![0u8; cfg.pipeline * (cfg.value_size + 64)];
                    loop {
                        let w = windows.fetch_add(1, Ordering::Relaxed);
                        if w >= total_windows {
                            break;
                        }
                        let sock = &mut socks[w as usize % per_thread];
                        // Homogeneous windows: all SETs or all GETs, so the
                        // response size is predictable without parsing.
                        let is_set =
                            cfg.set_every > 0 && w.is_multiple_of(cfg.set_every as u64);
                        let mut msg = Vec::with_capacity(cfg.pipeline * (cfg.value_size + 48));
                        for i in 0..cfg.pipeline {
                            let key = (w * cfg.pipeline as u64 + i as u64) as usize
                                % cfg.keyspace;
                            if is_set {
                                msg.extend_from_slice(
                                    format!("set key:{key:012} 0 0 {}\r\n", payload.len())
                                        .as_bytes(),
                                );
                                msg.extend_from_slice(payload);
                                msg.extend_from_slice(b"\r\n");
                            } else {
                                msg.extend_from_slice(
                                    format!("get key:{key:012}\r\n").as_bytes(),
                                );
                            }
                        }
                        sock.write_all(&msg)?;
                        if is_set {
                            // Exactly one "STORED\r\n" per set.
                            sock.read_exact(&mut resp[..cfg.pipeline * 8])?;
                        } else {
                            // Hits and misses both end in "END\r\n"; count
                            // terminators until every get is answered.
                            let mut ends = 0usize;
                            let mut buf = Vec::new();
                            while ends < cfg.pipeline {
                                let n = sock.read(&mut resp)?;
                                if n == 0 {
                                    return Err(io::Error::other(
                                        "server closed mid-window",
                                    ));
                                }
                                // A terminator can straddle reads: scan with
                                // 4 bytes of carry-over.
                                let carry = buf.len().saturating_sub(4);
                                buf.extend_from_slice(&resp[..n]);
                                ends += buf[carry..]
                                    .windows(5)
                                    .filter(|w| w == b"END\r\n")
                                    .count();
                                if ends < cfg.pipeline && buf.len() > 8 {
                                    let keep = buf.len() - 4;
                                    buf.drain(..keep);
                                }
                            }
                        }
                        completed += cfg.pipeline as u64;
                    }
                    Ok(completed)
                })
            })
            .collect();
        ready.wait();
        let start = Instant::now();
        let counts = handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect::<io::Result<Vec<u64>>>();
        elapsed = start.elapsed();
        counts
    })?;
    let requests: u64 = counts.iter().sum();
    let secs = elapsed.as_secs_f64();
    Ok(ConnScaleResult {
        conns,
        requests: requests as usize,
        secs,
        ops_per_sec: requests as f64 / secs.max(1e-9),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::KvCache;
    use fptree_baselines::HashIndex;

    #[test]
    fn runs_both_phases() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(16))));
        let cfg = McBenchConfig {
            requests: 5000,
            clients: 4,
            keyspace: 1000,
            value_size: 16,
            net_ns: 0,
        };
        let r = run(cache.as_ref(), &cfg);
        assert_eq!(r.set.requests, 5000);
        assert!(r.set.ops_per_sec > 0.0);
        assert!(r.get.ops_per_sec > 0.0);
        assert_eq!(cache.len(), 1000);
    }

    #[test]
    fn network_model_caps_throughput() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(16))));
        let cfg = McBenchConfig {
            requests: 2000,
            clients: 2,
            keyspace: 500,
            value_size: 8,
            net_ns: 100_000, // 100 µs per request
        };
        let r = run(cache.as_ref(), &cfg);
        // 2 clients at ≤10k req/s each.
        assert!(
            r.set.ops_per_sec < 25_000.0,
            "modeled network should cap throughput, got {}",
            r.set.ops_per_sec
        );
    }

    #[test]
    fn connscale_drives_real_sockets() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(16))));
        let server = crate::ServerBuilder::new("127.0.0.1:0")
            .max_connections(128)
            .serve(Arc::clone(&cache) as Arc<dyn Cache>)
            .unwrap();
        let cfg = ConnScaleConfig {
            conns: 32,
            threads: 2,
            requests: 4_000,
            pipeline: 8,
            keyspace: 500,
            value_size: 16,
            set_every: 3,
        };
        let r = run_connscale(server.addr, &cfg).unwrap();
        assert_eq!(r.conns, 32);
        assert_eq!(r.requests, 4_000);
        assert!(r.ops_per_sec > 0.0);
        // SET windows actually stored keys.
        assert!(!cache.is_empty());
        if fptree_core::Metrics::enabled() {
            let snap = cache.stats_snapshot();
            assert_eq!(snap.get("conn_opened"), Some(32));
            assert_eq!(snap.get("conn_rejected"), Some(0));
            let sets = snap.get("cmd_set").unwrap_or(0);
            let gets = snap.get("cmd_get").unwrap_or(0);
            assert_eq!(sets + gets, 4_000);
            assert!(sets > 0 && gets > 0);
        }
        server.shutdown();
    }
}
