//! mc-benchmark-style driver (Figure 13).
//!
//! The paper runs mc-benchmark (50 clients) against memcached over a
//! 940 Mbit/s network and finds performance *network-bound*: concurrent
//! indexes service requests in parallel and saturate the link (≤2–3%
//! overhead vs. the hash table), while single-threaded trees become the
//! bottleneck on SETs. We reproduce the bottleneck with a modeled
//! per-request network cost (`net_ns`): each simulated client busy-waits
//! that long per request, capping the per-client request rate exactly like
//! a fixed-RTT link; server-side work is the real index operation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fptree_pmem::busy_wait_ns;

use crate::cache::Cache;

/// Workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct McBenchConfig {
    /// Total SET requests (then the same number of GETs).
    pub requests: usize,
    /// Simulated concurrent clients (threads).
    pub clients: usize,
    /// Distinct keys (mc-benchmark uses a bounded random keyspace).
    pub keyspace: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Modeled per-request network cost in nanoseconds (0 = none).
    pub net_ns: u64,
}

impl Default for McBenchConfig {
    fn default() -> Self {
        McBenchConfig {
            requests: 100_000,
            clients: 50,
            keyspace: 100_000,
            value_size: 32,
            net_ns: 8_000,
        }
    }
}

/// Result of one phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Requests per second.
    pub ops_per_sec: f64,
}

/// SET-phase + GET-phase results.
#[derive(Debug, Clone, Copy)]
pub struct McBenchResult {
    pub set: PhaseResult,
    pub get: PhaseResult,
}

/// Runs the SET-then-GET workload against `cache` (any [`Cache`]:
/// unsharded or sharded).
pub fn run(cache: &dyn Cache, cfg: &McBenchConfig) -> McBenchResult {
    let set = run_phase(cache, cfg, true);
    let get = run_phase(cache, cfg, false);
    McBenchResult { set, get }
}

fn run_phase(cache: &dyn Cache, cfg: &McBenchConfig, is_set: bool) -> PhaseResult {
    let next = Arc::new(AtomicU64::new(0));
    let total = cfg.requests as u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.clients {
            let next = Arc::clone(&next);
            scope.spawn(move || {
                let payload = vec![0x42u8; cfg.value_size];
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    // mc-benchmark key shape: "memtier"-style counter key.
                    let key = format!("key:{:012}", i as usize % cfg.keyspace);
                    if cfg.net_ns > 0 {
                        busy_wait_ns(cfg.net_ns);
                    }
                    if is_set {
                        cache.set(key.as_bytes(), 0, payload.clone());
                    } else {
                        let _ = cache.get(key.as_bytes());
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    PhaseResult {
        requests: cfg.requests,
        secs,
        ops_per_sec: cfg.requests as f64 / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::KvCache;
    use fptree_baselines::HashIndex;

    #[test]
    fn runs_both_phases() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(16))));
        let cfg = McBenchConfig {
            requests: 5000,
            clients: 4,
            keyspace: 1000,
            value_size: 16,
            net_ns: 0,
        };
        let r = run(cache.as_ref(), &cfg);
        assert_eq!(r.set.requests, 5000);
        assert!(r.set.ops_per_sec > 0.0);
        assert!(r.get.ops_per_sec > 0.0);
        assert_eq!(cache.len(), 1000);
    }

    #[test]
    fn network_model_caps_throughput() {
        let cache = Arc::new(KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(16))));
        let cfg = McBenchConfig {
            requests: 2000,
            clients: 2,
            keyspace: 500,
            value_size: 8,
            net_ns: 100_000, // 100 µs per request
        };
        let r = run(cache.as_ref(), &cfg);
        // 2 clients at ≤10k req/s each.
        assert!(
            r.set.ops_per_sec < 25_000.0,
            "modeled network should cap throughput, got {}",
            r.set.ops_per_sec
        );
    }
}
