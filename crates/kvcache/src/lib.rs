//! memcached-style key-value cache with a pluggable index (paper §6.4).
//!
//! The paper integrates the evaluated trees into memcached by replacing its
//! hash table with the variable-size-key tree variants (full string keys,
//! values = item references) and measuring mc-benchmark SET/GET throughput.
//! This crate provides the pieces: a sharded [`store::ItemStore`], the
//! [`cache::KvCache`] core over any [`fptree_core::index::BytesIndex`], a
//! memcached text-[`protocol`] implementation with a TCP [`server`]
//! front-end, and the [`mcbench`] workload driver with a modeled network
//! cost (see DESIGN.md §2 for the substitution argument).

pub mod cache;
pub mod lru;
pub mod mcbench;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod store;

pub use cache::{Cache, KvCache};
pub use lru::LruList;
pub use mcbench::{
    run as run_mcbench, run_connscale, ConnScaleConfig, ConnScaleResult, McBenchConfig,
    McBenchResult,
};
pub use server::{Client, ServerBuilder, ServerHandle};
pub use shard::ShardedCache;
pub use store::{Item, ItemStore};
