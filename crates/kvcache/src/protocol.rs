//! memcached text protocol (the subset mc-benchmark exercises).
//!
//! `set <key> <flags> <exptime> <bytes>\r\n<data>\r\n` → `STORED\r\n`
//! `get <key>\r\n` → `VALUE <key> <flags> <bytes>\r\n<data>\r\nEND\r\n`
//! `delete <key>\r\n` → `DELETED\r\n` / `NOT_FOUND\r\n`

use crate::cache::KvCache;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Set {
        key: Vec<u8>,
        flags: u32,
        data: Vec<u8>,
    },
    Get {
        key: Vec<u8>,
    },
    Delete {
        key: Vec<u8>,
    },
    Quit,
}

/// Protocol-level parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// More bytes are needed to complete the command.
    Incomplete,
    /// Malformed command line.
    Bad(&'static str),
}

/// Parses one command from `buf`, returning it and the bytes consumed.
pub fn parse(buf: &[u8]) -> Result<(Command, usize), ParseError> {
    let line_end = find_crlf(buf).ok_or(ParseError::Incomplete)?;
    let line = std::str::from_utf8(&buf[..line_end]).map_err(|_| ParseError::Bad("utf8"))?;
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().ok_or(ParseError::Bad("empty command"))?;
    match verb {
        "set" => {
            let key = parts.next().ok_or(ParseError::Bad("set: missing key"))?;
            let flags: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError::Bad("set: flags"))?;
            let _exptime = parts.next().ok_or(ParseError::Bad("set: exptime"))?;
            let bytes: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError::Bad("set: bytes"))?;
            let data_start = line_end + 2;
            if buf.len() < data_start + bytes + 2 {
                return Err(ParseError::Incomplete);
            }
            if &buf[data_start + bytes..data_start + bytes + 2] != b"\r\n" {
                return Err(ParseError::Bad("set: data not CRLF-terminated"));
            }
            Ok((
                Command::Set {
                    key: key.as_bytes().to_vec(),
                    flags,
                    data: buf[data_start..data_start + bytes].to_vec(),
                },
                data_start + bytes + 2,
            ))
        }
        "get" => {
            let key = parts.next().ok_or(ParseError::Bad("get: missing key"))?;
            Ok((
                Command::Get {
                    key: key.as_bytes().to_vec(),
                },
                line_end + 2,
            ))
        }
        "delete" => {
            let key = parts.next().ok_or(ParseError::Bad("delete: missing key"))?;
            Ok((
                Command::Delete {
                    key: key.as_bytes().to_vec(),
                },
                line_end + 2,
            ))
        }
        "quit" => Ok((Command::Quit, line_end + 2)),
        _ => Err(ParseError::Bad("unknown verb")),
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Executes a command against the cache and renders the response bytes.
pub fn execute(cache: &KvCache, cmd: &Command) -> Vec<u8> {
    match cmd {
        Command::Set { key, flags, data } => {
            cache.set(key, *flags, data.clone());
            b"STORED\r\n".to_vec()
        }
        Command::Get { key } => match cache.get(key) {
            Some((flags, data)) => {
                let mut out = format!(
                    "VALUE {} {} {}\r\n",
                    String::from_utf8_lossy(key),
                    flags,
                    data.len()
                )
                .into_bytes();
                out.extend_from_slice(&data);
                out.extend_from_slice(b"\r\nEND\r\n");
                out
            }
            None => b"END\r\n".to_vec(),
        },
        Command::Delete { key } => {
            if cache.delete(key) {
                b"DELETED\r\n".to_vec()
            } else {
                b"NOT_FOUND\r\n".to_vec()
            }
        }
        Command::Quit => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fptree_baselines::HashIndex;
    use std::sync::Arc;

    fn cache() -> KvCache {
        KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(4)))
    }

    #[test]
    fn parse_set() {
        let buf = b"set mykey 7 0 5\r\nhello\r\n";
        let (cmd, used) = parse(buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(
            cmd,
            Command::Set {
                key: b"mykey".to_vec(),
                flags: 7,
                data: b"hello".to_vec()
            }
        );
    }

    #[test]
    fn parse_get_delete_quit() {
        assert_eq!(
            parse(b"get k\r\n").unwrap().0,
            Command::Get { key: b"k".to_vec() }
        );
        assert_eq!(
            parse(b"delete k\r\n").unwrap().0,
            Command::Delete { key: b"k".to_vec() }
        );
        assert_eq!(parse(b"quit\r\n").unwrap().0, Command::Quit);
    }

    #[test]
    fn parse_incomplete() {
        assert_eq!(
            parse(b"set k 0 0 5\r\nhel").unwrap_err(),
            ParseError::Incomplete
        );
        assert_eq!(parse(b"get k").unwrap_err(), ParseError::Incomplete);
    }

    #[test]
    fn parse_pipelined() {
        let buf = b"set a 0 0 1\r\nx\r\nget a\r\n";
        let (c1, used) = parse(buf).unwrap();
        assert!(matches!(c1, Command::Set { .. }));
        let (c2, used2) = parse(&buf[used..]).unwrap();
        assert_eq!(c2, Command::Get { key: b"a".to_vec() });
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(parse(b"frobnicate\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"set k x 0 5\r\n"), Err(ParseError::Bad(_))));
    }

    #[test]
    fn execute_set_get_delete() {
        let c = cache();
        let (set, _) = parse(b"set k 3 0 2\r\nhi\r\n").unwrap();
        assert_eq!(execute(&c, &set), b"STORED\r\n");
        let (get, _) = parse(b"get k\r\n").unwrap();
        assert_eq!(execute(&c, &get), b"VALUE k 3 2\r\nhi\r\nEND\r\n");
        let (del, _) = parse(b"delete k\r\n").unwrap();
        assert_eq!(execute(&c, &del), b"DELETED\r\n");
        assert_eq!(execute(&c, &del), b"NOT_FOUND\r\n");
        assert_eq!(execute(&c, &get), b"END\r\n");
    }

    #[test]
    fn binary_safe_values() {
        let c = cache();
        let mut buf = b"set bin 0 0 4\r\n".to_vec();
        buf.extend_from_slice(&[0, 255, 13, 10]); // includes CR LF bytes
        buf.extend_from_slice(b"\r\n");
        let (cmd, used) = parse(&buf).unwrap();
        assert_eq!(used, buf.len());
        execute(&c, &cmd);
        assert_eq!(c.get(b"bin").unwrap().1, vec![0, 255, 13, 10]);
    }
}
