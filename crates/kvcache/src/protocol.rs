//! memcached text protocol (the subset mc-benchmark exercises).
//!
//! `set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n` → `STORED\r\n`
//! `get <key> [key ...]\r\n` → one `VALUE <key> <flags> <bytes>\r\n<data>\r\n`
//! block per present key (request order), then `END\r\n`
//! `delete <key> [noreply]\r\n` → `DELETED\r\n` / `NOT_FOUND\r\n`
//! `scan <start> <count>\r\n` → `VALUE ...` lines then `END\r\n`
//!
//! `noreply` suppresses the response entirely (memcached semantics: the
//! client pipelines without reading). `scan` is our ordered-index extension:
//! it returns up to `count` items with keys `>= start` in key order, and
//! `SERVER_ERROR` when the configured index cannot scan (hash).
//!
//! Observability commands (memcached-compatible):
//! `version\r\n` → `VERSION <server> proto <n>\r\n`
//! `stats\r\n` → `STAT <name> <value>\r\n` lines then `END\r\n`
//! `stats reset\r\n` → `RESET\r\n` (zeroes the server-side counters)
//!
//! Keys follow memcached's limit of 250 bytes
//! ([`fptree_core::MAX_KEY_BYTES`]); longer keys are a protocol error.

use crate::cache::Cache;
use fptree_core::metrics::Counter;
use fptree_core::MAX_KEY_BYTES;

/// Wire-protocol revision, reported by `version` and `stats`. Bump when the
/// command set or response framing changes incompatibly.
pub const PROTOCOL_VERSION: u32 = 2;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Set {
        key: Vec<u8>,
        flags: u32,
        data: Vec<u8>,
        /// Suppress the `STORED` response (memcached `noreply`).
        noreply: bool,
    },
    Get {
        /// One or more keys (memcached multi-get); absent keys are simply
        /// skipped in the response.
        keys: Vec<Vec<u8>>,
    },
    Delete {
        key: Vec<u8>,
        /// Suppress the `DELETED`/`NOT_FOUND` response.
        noreply: bool,
    },
    Scan {
        /// First key of the scan (inclusive).
        start: Vec<u8>,
        /// Maximum number of items to return.
        count: usize,
    },
    Stats {
        /// `stats reset`: zero the server-side counters instead of dumping.
        reset: bool,
        /// `stats shards`: dump the per-shard breakdown (`SERVER_ERROR` on
        /// unsharded caches).
        shards: bool,
    },
    Version,
    Quit,
}

/// Protocol-level parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// More bytes are needed to complete the command.
    Incomplete,
    /// Malformed command line.
    Bad(&'static str),
}

/// Consumes an optional trailing `noreply` token; any other trailing token
/// is a protocol error.
fn parse_noreply<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    verb: &'static str,
) -> Result<bool, ParseError> {
    match parts.next() {
        None => Ok(false),
        Some("noreply") => match parts.next() {
            None => Ok(true),
            Some(_) => Err(ParseError::Bad(verb)),
        },
        Some(_) => Err(ParseError::Bad(verb)),
    }
}

/// Rejects keys beyond memcached's 250-byte limit.
fn check_key_len(key: &str) -> Result<(), ParseError> {
    if key.len() > MAX_KEY_BYTES {
        Err(ParseError::Bad("key exceeds 250 bytes"))
    } else {
        Ok(())
    }
}

/// Parses one command from `buf`, returning it and the bytes consumed.
pub fn parse(buf: &[u8]) -> Result<(Command, usize), ParseError> {
    let line_end = find_crlf(buf).ok_or(ParseError::Incomplete)?;
    let line = std::str::from_utf8(&buf[..line_end]).map_err(|_| ParseError::Bad("utf8"))?;
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().ok_or(ParseError::Bad("empty command"))?;
    match verb {
        "set" => {
            let key = parts.next().ok_or(ParseError::Bad("set: missing key"))?;
            check_key_len(key)?;
            let flags: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError::Bad("set: flags"))?;
            let _exptime = parts.next().ok_or(ParseError::Bad("set: exptime"))?;
            let bytes: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError::Bad("set: bytes"))?;
            let noreply = parse_noreply(parts, "set: trailing token")?;
            let data_start = line_end + 2;
            if buf.len() < data_start + bytes + 2 {
                return Err(ParseError::Incomplete);
            }
            if &buf[data_start + bytes..data_start + bytes + 2] != b"\r\n" {
                return Err(ParseError::Bad("set: data not CRLF-terminated"));
            }
            Ok((
                Command::Set {
                    key: key.as_bytes().to_vec(),
                    flags,
                    data: buf[data_start..data_start + bytes].to_vec(),
                    noreply,
                },
                data_start + bytes + 2,
            ))
        }
        "get" => {
            let mut keys = Vec::new();
            for key in parts {
                check_key_len(key)?;
                keys.push(key.as_bytes().to_vec());
            }
            if keys.is_empty() {
                return Err(ParseError::Bad("get: missing key"));
            }
            Ok((Command::Get { keys }, line_end + 2))
        }
        "delete" => {
            let key = parts.next().ok_or(ParseError::Bad("delete: missing key"))?;
            check_key_len(key)?;
            let noreply = parse_noreply(parts, "delete: trailing token")?;
            Ok((
                Command::Delete {
                    key: key.as_bytes().to_vec(),
                    noreply,
                },
                line_end + 2,
            ))
        }
        "scan" => {
            let start = parts.next().ok_or(ParseError::Bad("scan: missing start"))?;
            let count: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError::Bad("scan: count"))?;
            if parts.next().is_some() {
                return Err(ParseError::Bad("scan: trailing token"));
            }
            Ok((
                Command::Scan {
                    start: start.as_bytes().to_vec(),
                    count,
                },
                line_end + 2,
            ))
        }
        "stats" => {
            let (reset, shards) = match parts.next() {
                None => (false, false),
                Some(arg @ ("reset" | "shards")) => match parts.next() {
                    None => (arg == "reset", arg == "shards"),
                    Some(_) => return Err(ParseError::Bad("stats: trailing token")),
                },
                Some(_) => return Err(ParseError::Bad("stats: unknown argument")),
            };
            Ok((Command::Stats { reset, shards }, line_end + 2))
        }
        "version" => {
            if parts.next().is_some() {
                return Err(ParseError::Bad("version: trailing token"));
            }
            Ok((Command::Version, line_end + 2))
        }
        "quit" => Ok((Command::Quit, line_end + 2)),
        _ => Err(ParseError::Bad("unknown verb")),
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Executes a command against the cache and renders the response bytes
/// (empty for `noreply` commands and for `quit`).
pub fn execute(cache: &dyn Cache, cmd: &Command) -> Vec<u8> {
    let mut out = Vec::new();
    execute_into(cache, cmd, &mut out);
    out
}

/// Executes a command against the cache, appending the rendered response to
/// `out` (nothing for `noreply` commands and for `quit`). The event-loop
/// server accumulates one contiguous response block per pipelined batch
/// through this form, so a whole batch flushes as one vectored write;
/// [`execute`] wraps it for single commands.
pub fn execute_into(cache: &dyn Cache, cmd: &Command, out: &mut Vec<u8>) {
    match cmd {
        Command::Set {
            key,
            flags,
            data,
            noreply,
        } => {
            cache.metrics().inc(Counter::CmdSet);
            cache.set(key, *flags, data.clone());
            if !*noreply {
                out.extend_from_slice(b"STORED\r\n");
            }
        }
        Command::Get { keys } => {
            cache.metrics().inc(Counter::CmdGet);
            for (key, item) in keys.iter().zip(cache.get_many(keys)) {
                if let Some((flags, data)) = item {
                    push_value(out, key, flags, &data);
                }
            }
            out.extend_from_slice(b"END\r\n");
        }
        Command::Delete { key, noreply } => {
            cache.metrics().inc(Counter::CmdDelete);
            let deleted = cache.delete(key);
            if !*noreply {
                out.extend_from_slice(if deleted {
                    b"DELETED\r\n"
                } else {
                    b"NOT_FOUND\r\n"
                });
            }
        }
        Command::Scan { start, count } => {
            cache.metrics().inc(Counter::CmdScan);
            match cache.scan(start, *count) {
                Some(items) => {
                    for (key, flags, data) in &items {
                        push_value(out, key, *flags, data);
                    }
                    out.extend_from_slice(b"END\r\n");
                }
                None => {
                    out.extend_from_slice(b"SERVER_ERROR scan not supported by this index\r\n")
                }
            }
        }
        Command::Stats { reset, shards } => {
            cache.metrics().inc(Counter::CmdStats);
            if *reset {
                cache.reset_stats();
                out.extend_from_slice(b"RESET\r\n");
            } else if *shards {
                out.extend_from_slice(&render_shard_stats(cache));
            } else {
                out.extend_from_slice(&render_stats(cache));
            }
        }
        Command::Version => {
            cache.metrics().inc(Counter::CmdVersion);
            out.extend_from_slice(version_line().as_bytes());
        }
        Command::Quit => {}
    }
}

/// The `version` response: server name/version plus the wire-protocol
/// revision, e.g. `VERSION fptree-kvcache/0.1.0 proto 2\r\n`.
pub fn version_line() -> String {
    format!(
        "VERSION fptree-kvcache/{} proto {}\r\n",
        env!("CARGO_PKG_VERSION"),
        PROTOCOL_VERSION
    )
}

/// Renders the memcached `stats` response: one `STAT <name> <value>\r\n`
/// line per snapshot field, closed by `END\r\n`. The first two lines carry
/// the server version and protocol revision like memcached's `STAT version`.
fn render_stats(cache: &dyn Cache) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(&format!(
        "STAT version {}\r\nSTAT protocol {}\r\n",
        env!("CARGO_PKG_VERSION"),
        PROTOCOL_VERSION
    ));
    for (name, value) in cache.stats_snapshot().fields() {
        out.push_str(&format!("STAT {name} {value}\r\n"));
    }
    out.push_str("END\r\n");
    out.into_bytes()
}

/// Renders the `stats shards` response: per shard, one
/// `STAT shard<i>:<name> <value>\r\n` line per snapshot field, closed by
/// `END\r\n`; `SERVER_ERROR` when the cache is not sharded.
fn render_shard_stats(cache: &dyn Cache) -> Vec<u8> {
    let Some(snapshots) = cache.shard_stats() else {
        return b"SERVER_ERROR cache is not sharded\r\n".to_vec();
    };
    let mut out = String::new();
    out.push_str(&format!("STAT shards {}\r\n", snapshots.len()));
    for (i, snap) in snapshots.iter().enumerate() {
        for (name, value) in snap.fields() {
            out.push_str(&format!("STAT shard{i}:{name} {value}\r\n"));
        }
    }
    out.push_str("END\r\n");
    out.into_bytes()
}

/// Renders one `VALUE <key> <flags> <bytes>\r\n<data>\r\n` block.
fn push_value(out: &mut Vec<u8>, key: &[u8], flags: u32, data: &[u8]) {
    out.extend_from_slice(
        format!(
            "VALUE {} {} {}\r\n",
            String::from_utf8_lossy(key),
            flags,
            data.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvCache;
    use fptree_baselines::HashIndex;
    use std::sync::Arc;

    fn cache() -> KvCache {
        KvCache::new(Arc::new(HashIndex::<Vec<u8>>::new(4)))
    }

    #[test]
    fn parse_set() {
        let buf = b"set mykey 7 0 5\r\nhello\r\n";
        let (cmd, used) = parse(buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(
            cmd,
            Command::Set {
                key: b"mykey".to_vec(),
                flags: 7,
                data: b"hello".to_vec(),
                noreply: false,
            }
        );
    }

    #[test]
    fn parse_get_delete_quit() {
        assert_eq!(
            parse(b"get k\r\n").unwrap().0,
            Command::Get {
                keys: vec![b"k".to_vec()]
            }
        );
        assert_eq!(
            parse(b"delete k\r\n").unwrap().0,
            Command::Delete {
                key: b"k".to_vec(),
                noreply: false,
            }
        );
        assert_eq!(parse(b"quit\r\n").unwrap().0, Command::Quit);
    }

    #[test]
    fn parse_noreply_suffix() {
        let buf = b"set k 1 0 2 noreply\r\nhi\r\n";
        let (cmd, used) = parse(buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(
            cmd,
            Command::Set {
                key: b"k".to_vec(),
                flags: 1,
                data: b"hi".to_vec(),
                noreply: true,
            }
        );
        assert_eq!(
            parse(b"delete k noreply\r\n").unwrap().0,
            Command::Delete {
                key: b"k".to_vec(),
                noreply: true,
            }
        );
        // Anything after `noreply` (or in its place) is malformed.
        assert!(matches!(
            parse(b"set k 1 0 2 noreply x\r\nhi\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse(b"set k 1 0 2 bogus\r\nhi\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse(b"delete k bogus\r\n"),
            Err(ParseError::Bad(_))
        ));
    }

    #[test]
    fn parse_scan() {
        assert_eq!(
            parse(b"scan user:0001 50\r\n").unwrap().0,
            Command::Scan {
                start: b"user:0001".to_vec(),
                count: 50,
            }
        );
        assert!(matches!(parse(b"scan\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"scan k\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"scan k x\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"scan k 5 y\r\n"), Err(ParseError::Bad(_))));
    }

    #[test]
    fn parse_incomplete() {
        assert_eq!(
            parse(b"set k 0 0 5\r\nhel").unwrap_err(),
            ParseError::Incomplete
        );
        assert_eq!(parse(b"get k").unwrap_err(), ParseError::Incomplete);
    }

    #[test]
    fn parse_pipelined() {
        let buf = b"set a 0 0 1\r\nx\r\nget a\r\n";
        let (c1, used) = parse(buf).unwrap();
        assert!(matches!(c1, Command::Set { .. }));
        let (c2, used2) = parse(&buf[used..]).unwrap();
        assert_eq!(
            c2,
            Command::Get {
                keys: vec![b"a".to_vec()]
            }
        );
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn parse_multi_key_get() {
        assert_eq!(
            parse(b"get k1 k2 k3\r\n").unwrap().0,
            Command::Get {
                keys: vec![b"k1".to_vec(), b"k2".to_vec(), b"k3".to_vec()]
            }
        );
        // A bare `get` is still malformed.
        assert!(matches!(parse(b"get\r\n"), Err(ParseError::Bad(_))));
        // Every key of a multi-get honors the 250-byte limit.
        let long = "k".repeat(MAX_KEY_BYTES + 1);
        assert!(matches!(
            parse(format!("get ok {long}\r\n").as_bytes()),
            Err(ParseError::Bad(_))
        ));
    }

    #[test]
    fn execute_multi_key_get() {
        let c = cache();
        for (k, v) in [("a", "1"), ("b", "2"), ("d", "4")] {
            let (set, _) = parse(format!("set {k} 0 0 1\r\n{v}\r\n").as_bytes()).unwrap();
            execute(&c, &set);
        }
        // Present keys answer in request order; absent keys are skipped.
        let (get, _) = parse(b"get b missing a d\r\n").unwrap();
        assert_eq!(
            execute(&c, &get),
            b"VALUE b 0 1\r\n2\r\nVALUE a 0 1\r\n1\r\nVALUE d 0 1\r\n4\r\nEND\r\n"
        );
        // All absent: just END.
        let (get, _) = parse(b"get x y\r\n").unwrap();
        assert_eq!(execute(&c, &get), b"END\r\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(parse(b"frobnicate\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"set k x 0 5\r\n"), Err(ParseError::Bad(_))));
    }

    #[test]
    fn parse_stats_and_version() {
        assert_eq!(
            parse(b"stats\r\n").unwrap().0,
            Command::Stats {
                reset: false,
                shards: false
            }
        );
        assert_eq!(
            parse(b"stats reset\r\n").unwrap().0,
            Command::Stats {
                reset: true,
                shards: false
            }
        );
        assert_eq!(
            parse(b"stats shards\r\n").unwrap().0,
            Command::Stats {
                reset: false,
                shards: true
            }
        );
        assert_eq!(parse(b"version\r\n").unwrap().0, Command::Version);
        assert!(matches!(parse(b"stats bogus\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(
            parse(b"stats reset x\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse(b"stats shards x\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(parse(b"version x\r\n"), Err(ParseError::Bad(_))));
    }

    #[test]
    fn parse_rejects_oversized_keys() {
        let long = "k".repeat(MAX_KEY_BYTES + 1);
        assert!(matches!(
            parse(format!("get {long}\r\n").as_bytes()),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse(format!("set {long} 0 0 1\r\nx\r\n").as_bytes()),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse(format!("delete {long}\r\n").as_bytes()),
            Err(ParseError::Bad(_))
        ));
        // Exactly at the limit is fine.
        let max = "k".repeat(MAX_KEY_BYTES);
        assert!(parse(format!("get {max}\r\n").as_bytes()).is_ok());
    }

    #[test]
    fn execute_version_reports_protocol() {
        let c = cache();
        let (cmd, _) = parse(b"version\r\n").unwrap();
        let resp = String::from_utf8(execute(&c, &cmd)).unwrap();
        assert!(resp.starts_with("VERSION fptree-kvcache/"));
        assert!(resp.ends_with(&format!("proto {PROTOCOL_VERSION}\r\n")));
    }

    #[test]
    fn execute_stats_renders_memcached_format() {
        let c = cache();
        for cmd in ["set k 0 0 2\r\nhi\r\n", "get k\r\n", "get missing\r\n"] {
            let (cmd, _) = parse(cmd.as_bytes()).unwrap();
            execute(&c, &cmd);
        }
        let (stats, _) = parse(b"stats\r\n").unwrap();
        let resp = String::from_utf8(execute(&c, &stats)).unwrap();
        assert!(resp.ends_with("END\r\n"));
        let mut lines = resp.lines().collect::<Vec<_>>();
        assert_eq!(lines.pop(), Some("END"));
        // Every remaining line is `STAT <name> <value>`.
        for line in &lines {
            let mut parts = line.split(' ');
            assert_eq!(parts.next(), Some("STAT"));
            assert!(parts.next().is_some());
            assert!(parts.next().is_some());
        }
        let field = |name: &str| {
            lines
                .iter()
                .find_map(|l| l.strip_prefix(&format!("STAT {name} ")))
                .map(|v| v.to_owned())
        };
        assert_eq!(field("protocol"), Some(PROTOCOL_VERSION.to_string()));
        assert_eq!(field("curr_items"), Some("1".to_string()));
        if fptree_core::Metrics::enabled() {
            assert_eq!(field("cmd_get"), Some("2".to_string()));
            assert_eq!(field("cmd_set"), Some("1".to_string()));
            assert_eq!(field("cache_hits"), Some("1".to_string()));
            assert_eq!(field("cache_misses"), Some("1".to_string()));
        }
    }

    #[test]
    fn execute_stats_shards_needs_sharded_cache() {
        // Unsharded: SERVER_ERROR.
        let c = cache();
        let (cmd, _) = parse(b"stats shards\r\n").unwrap();
        assert!(execute(&c, &cmd).starts_with(b"SERVER_ERROR"));

        // Sharded: one STAT shard<i>:<name> section per shard.
        let sharded = crate::ShardedCache::new(
            (0..2)
                .map(|_| {
                    Arc::new(HashIndex::<Vec<u8>>::new(4))
                        as Arc<dyn fptree_core::index::BytesIndex>
                })
                .collect(),
        );
        for i in 0..20u32 {
            sharded.set(format!("k{i}").as_bytes(), 0, b"v".to_vec());
        }
        let resp = String::from_utf8(execute(&sharded, &cmd)).unwrap();
        assert!(resp.ends_with("END\r\n"));
        assert!(resp.starts_with("STAT shards 2\r\n"));
        let items: u64 = (0..2)
            .map(|i| {
                resp.lines()
                    .find_map(|l| l.strip_prefix(&format!("STAT shard{i}:curr_items ")))
                    .expect("per-shard curr_items line")
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(items, 20);
    }

    #[test]
    fn execute_stats_reset_zeroes_counters() {
        let c = cache();
        let (set, _) = parse(b"set k 0 0 2\r\nhi\r\n").unwrap();
        execute(&c, &set);
        let (reset, _) = parse(b"stats reset\r\n").unwrap();
        assert_eq!(execute(&c, &reset), b"RESET\r\n");
        let snap = c.stats_snapshot();
        assert_eq!(snap.get("cmd_set"), Some(0));
        // stats reset leaves the data itself untouched.
        assert_eq!(c.get(b"k").unwrap().1, b"hi".to_vec());
    }

    #[test]
    fn execute_set_get_delete() {
        let c = cache();
        let (set, _) = parse(b"set k 3 0 2\r\nhi\r\n").unwrap();
        assert_eq!(execute(&c, &set), b"STORED\r\n");
        let (get, _) = parse(b"get k\r\n").unwrap();
        assert_eq!(execute(&c, &get), b"VALUE k 3 2\r\nhi\r\nEND\r\n");
        let (del, _) = parse(b"delete k\r\n").unwrap();
        assert_eq!(execute(&c, &del), b"DELETED\r\n");
        assert_eq!(execute(&c, &del), b"NOT_FOUND\r\n");
        assert_eq!(execute(&c, &get), b"END\r\n");
    }

    #[test]
    fn execute_noreply_is_silent() {
        let c = cache();
        let (set, _) = parse(b"set k 3 0 2 noreply\r\nhi\r\n").unwrap();
        assert_eq!(execute(&c, &set), b"");
        assert_eq!(c.get(b"k").unwrap().1, b"hi".to_vec());
        let (del, _) = parse(b"delete k noreply\r\n").unwrap();
        assert_eq!(execute(&c, &del), b"");
        assert!(c.get(b"k").is_none());
        // noreply delete of a missing key is silent too.
        assert_eq!(execute(&c, &del), b"");
    }

    #[test]
    fn execute_scan_on_hash_is_server_error() {
        let c = cache();
        let (scan, _) = parse(b"scan a 10\r\n").unwrap();
        let resp = execute(&c, &scan);
        assert!(resp.starts_with(b"SERVER_ERROR"));
    }

    #[test]
    fn binary_safe_values() {
        let c = cache();
        let mut buf = b"set bin 0 0 4\r\n".to_vec();
        buf.extend_from_slice(&[0, 255, 13, 10]); // includes CR LF bytes
        buf.extend_from_slice(b"\r\n");
        let (cmd, used) = parse(&buf).unwrap();
        assert_eq!(used, buf.len());
        execute(&c, &cmd);
        assert_eq!(c.get(b"bin").unwrap().1, vec![0, 255, 13, 10]);
    }
}
