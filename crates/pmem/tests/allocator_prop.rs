//! Property tests for the persistent allocator: random alloc/free schedules
//! with random crash points must always leave the heap walkable, leak-free,
//! and consistent with the owner pointers.

use fptree_pmem::{crash_is_injected, PmemPool, PoolOptions, RawPPtr, USER_BASE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum AllocOp {
    /// Allocate `size` into owner slot `slot % N_SLOTS` (if free).
    Alloc(usize, u8),
    /// Free the pointer in owner slot `slot % N_SLOTS` (if occupied).
    Free(u8),
}

const N_SLOTS: u64 = 16;

fn op_strategy() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        3 => (1usize..5000, any::<u8>()).prop_map(|(s, slot)| AllocOp::Alloc(s, slot)),
        2 => any::<u8>().prop_map(AllocOp::Free),
    ]
}

/// Owner slots live in a dedicated block so they are themselves persistent.
fn slot_off(base: u64, i: u8) -> u64 {
    base + (i as u64 % N_SLOTS) * 16
}

fn run_schedule(pool: &PmemPool, base: u64, ops: &[AllocOp]) {
    for op in ops {
        match op {
            AllocOp::Alloc(size, slot) => {
                let off = slot_off(base, *slot);
                let cur: RawPPtr = pool.read_at(off);
                if cur.is_null() {
                    let _ = pool.allocate(off, *size);
                }
            }
            AllocOp::Free(slot) => {
                let off = slot_off(base, *slot);
                let cur: RawPPtr = pool.read_at(off);
                if !cur.is_null() {
                    pool.deallocate(off);
                }
            }
        }
    }
}

/// Heap walk must succeed; every owner pointer must reference a live block;
/// every live block except the slot holder must be owned by exactly one
/// slot (no leaks, no double ownership).
fn verify(pool: &PmemPool, base: u64) {
    let live = pool.live_blocks().expect("heap must stay walkable");
    let mut owned = std::collections::HashSet::new();
    for i in 0..N_SLOTS as u8 {
        let p: RawPPtr = pool.read_at(slot_off(base, i));
        if !p.is_null() {
            assert!(
                live.iter().any(|&(o, _)| o == p.offset),
                "owner slot {i} references a non-live block {:#x}",
                p.offset
            );
            assert!(
                owned.insert(p.offset),
                "two slots own block {:#x}",
                p.offset
            );
        }
    }
    for (off, _) in &live {
        if *off == base {
            continue; // the slot-holder block itself
        }
        assert!(
            owned.contains(off),
            "leak: live block {off:#x} has no owner"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_schedules_never_corrupt(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let pool = PmemPool::create(PoolOptions::direct(16 << 20)).expect("pool");
        let base = pool.allocate(fptree_pmem::ROOT_SLOT, (N_SLOTS * 16) as usize).expect("slots");
        pool.write_bytes(base, &vec![0u8; (N_SLOTS * 16) as usize]);
        run_schedule(&pool, base, &ops);
        verify(&pool, base);
    }

    #[test]
    fn crashed_schedules_recover_consistent(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        fuse in 1u64..800,
        seed in any::<u64>(),
    ) {
        let pool = PmemPool::create(PoolOptions::tracked(16 << 20)).expect("pool");
        let base = pool.allocate(fptree_pmem::ROOT_SLOT, (N_SLOTS * 16) as usize).expect("slots");
        pool.write_bytes(base, &vec![0u8; (N_SLOTS * 16) as usize]);
        pool.persist(base, (N_SLOTS * 16) as usize);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.set_crash_fuse(Some(fuse));
            run_schedule(&pool, base, &ops);
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = &r {
            prop_assert!(crash_is_injected(e.as_ref()), "non-injected panic");
        }
        let image = pool.crash_image(seed);
        let pool2 = PmemPool::reopen(image, PoolOptions::tracked(0)).expect("reopen");
        verify(&pool2, base);
        // The recovered allocator must still work.
        let extra = pool2.allocate(slot_off(base, 0), 64);
        if extra.is_ok() {
            // Only if slot 0 was free — tolerate occupancy.
        } else {
            // Slot occupied: free then re-alloc must work.
        }
    }

    #[test]
    fn allocations_are_disjoint(sizes in proptest::collection::vec(1usize..9000, 1..40)) {
        let pool = PmemPool::create(PoolOptions::direct(32 << 20)).expect("pool");
        let base = pool.allocate(fptree_pmem::ROOT_SLOT, 1024).expect("slots");
        let mut spans: Vec<(u64, usize)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let off = pool.allocate(base + (i as u64 % 64) * 16, size);
            // Owner slots get overwritten; that is fine for this test — we
            // only check span disjointness of the returned blocks.
            let off = off.expect("alloc");
            prop_assert_eq!(off % 64, 0, "blocks are cache-line aligned");
            for &(o, s) in &spans {
                let no_overlap = off + size as u64 <= o || o + s as u64 <= off;
                prop_assert!(no_overlap, "blocks overlap: ({o:#x},{s}) and ({off:#x},{size})");
            }
            spans.push((off, size));
        }
        prop_assert!(off_max(&spans) <= pool.capacity() as u64);
    }
}

fn off_max(spans: &[(u64, usize)]) -> u64 {
    spans
        .iter()
        .map(|&(o, s)| o + s as u64)
        .max()
        .unwrap_or(USER_BASE)
}
