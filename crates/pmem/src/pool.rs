//! The persistent memory pool: simulated SCM with a volatile cache overlay.
//!
//! A pool models one SCM "file" mapped into the address space (the SNIA
//! model the paper follows: an SCM-aware file system gives the application
//! direct load/store access via mmap). Two operating modes:
//!
//! * [`PoolMode::Direct`] — stores hit the backing memory immediately;
//!   `persist` costs only emulated latency and statistics. This is the
//!   benchmark configuration, equivalent to the paper's emulation platform.
//! * [`PoolMode::Tracked`] — stores land in a simulated CPU-cache overlay
//!   keyed by cache line, and reach the durable image only when explicitly
//!   flushed by `persist`. [`PmemPool::crash_image`] then materializes what
//!   SCM would contain after a power failure: flushed data intact, unflushed
//!   data lost at 8-byte granularity (the paper's p-atomic write size).
//!
//! The *crash fuse* ([`PmemPool::set_crash_fuse`]) makes every write/persist
//! a potential crash point, which is how the crash-consistency test harness
//! interrupts tree operations at arbitrary instructions.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alloc::{AllocError, AllocHeader};
use crate::check::{self, CheckedOp, CheckerState, DurabilityReport};
use crate::latency::LatencyProfile;
use crate::pptr::{PPtr, Pod};
use crate::stats::PoolStats;

/// Size of a simulated CPU cache line in bytes.
pub const CACHE_LINE: usize = 64;

/// First offset available to the allocator; everything below is pool header.
pub const USER_BASE: u64 = 4096;

/// Granularity of power-fail atomicity: the paper assumes only 8-byte writes
/// are p-atomic (§2 "Partial writes").
pub const PATOMIC_SIZE: usize = 8;

const MAGIC: u64 = 0x46505452_45455631; // "FPTREEV1"
const OFF_MAGIC: u64 = 0;
const OFF_LEN: u64 = 8;
const OFF_FILE_ID: u64 = 16;
const OFF_ROOT: u64 = 24;
const OFF_INIT: u64 = 32;
/// Pool considered fully initialized once this value is persisted at OFF_INIT.
const INIT_DONE: u64 = 2;

/// Offset of a reserved 16-byte persistent-pointer slot in the pool header.
///
/// Bootstraps ownership: the application's root object is allocated with
/// this slot as the owner pointer, so even the very first allocation is
/// covered by the leak-prevention protocol.
pub const ROOT_SLOT: u64 = 40;

/// Payload of the panic raised when the crash fuse fires.
///
/// The crash-test harness catches unwinds and downcasts to this type to
/// distinguish injected crashes from genuine bugs.
#[derive(Debug, Clone, Copy)]
pub struct CrashPanic;

/// Returns true if `payload` (from `catch_unwind`) is an injected crash.
pub fn crash_is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<CrashPanic>()
}

/// Operating mode of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Stores hit backing memory immediately; for benchmarks.
    Direct,
    /// Stores buffered in a simulated cache; for crash-consistency tests.
    Tracked,
}

/// Construction options for [`PmemPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// Pool capacity in bytes (header included).
    pub size: usize,
    /// Operating mode.
    pub mode: PoolMode,
    /// Emulated extra SCM latency.
    pub latency: LatencyProfile,
    /// Pool ("file") identifier baked into persistent pointers.
    pub file_id: u64,
    /// Enables the durability checker from construction, so pool/allocator
    /// initialization and recovery run under it too (see [`crate::check`]).
    pub checker: bool,
}

impl PoolOptions {
    /// Direct-mode pool with no injected latency — the common test setup.
    pub fn direct(size: usize) -> Self {
        PoolOptions {
            size,
            mode: PoolMode::Direct,
            latency: LatencyProfile::DRAM,
            file_id: 1,
            checker: false,
        }
    }

    /// Tracked-mode pool for crash simulation.
    pub fn tracked(size: usize) -> Self {
        PoolOptions {
            size,
            mode: PoolMode::Tracked,
            latency: LatencyProfile::DRAM,
            file_id: 1,
            checker: false,
        }
    }

    /// Sets the latency profile.
    pub fn with_latency(mut self, latency: LatencyProfile) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the file id.
    pub fn with_file_id(mut self, file_id: u64) -> Self {
        self.file_id = file_id;
        self
    }

    /// Enables the persist-order durability checker from the first write.
    pub fn with_checker(mut self) -> Self {
        self.checker = true;
        self
    }
}

/// One dirty cache line in the simulated CPU cache.
struct DirtyLine {
    data: [u8; CACHE_LINE],
    /// Per-byte dirty mask: bit i set means byte i was written since the
    /// last flush of this line.
    dirty: u64,
}

/// The simulated CPU cache: dirty lines that have not reached SCM yet.
#[derive(Default)]
struct Overlay {
    lines: HashMap<u64, DirtyLine>,
}

/// A simulated persistent memory pool.
///
/// All persistent accesses go through the typed [`read`](Self::read) /
/// [`write`](Self::write) API so that tracked mode can interpose the cache
/// overlay; transient in-pool fields (leaf locks) use
/// [`atomic_u8`](Self::atomic_u8) and bypass it by design.
///
/// ```
/// use fptree_pmem::{PmemPool, PoolOptions, ROOT_SLOT};
///
/// let pool = PmemPool::create(PoolOptions::tracked(1 << 20)).unwrap();
/// // Crash-safe allocation: the block address is persisted into the owner
/// // slot before `allocate` returns, so a crash can never leak it.
/// let off = pool.allocate(ROOT_SLOT, 64).unwrap();
/// pool.write_word(off, 42);
/// pool.persist(off, 8);
/// // Simulate a restart from the durable image.
/// let pool2 = PmemPool::reopen(pool.clean_image(), PoolOptions::tracked(0)).unwrap();
/// assert_eq!(pool2.read_word(off), 42);
/// ```
pub struct PmemPool {
    buf: Box<[UnsafeCell<u8>]>,
    len: usize,
    mode: PoolMode,
    file_id: u64,
    read_ns: AtomicU64,
    write_ns: AtomicU64,
    overlay: Mutex<Overlay>,
    /// Remaining persistence events before an injected crash; negative = off.
    fuse: AtomicI64,
    pub(crate) alloc_lock: Mutex<()>,
    stats: PoolStats,
    /// Fast-path gate for the durability checker (one relaxed load per
    /// write/persist when disabled).
    checker_enabled: AtomicBool,
    /// Durability-checker trace and report. Lock order: never taken while
    /// holding `overlay` (each hook takes exactly one of the two).
    checker: Mutex<CheckerState>,
}

// SAFETY: interior mutability is through raw pointers into `buf`; the access
// protocol (allocator lock, leaf locks, tracked-mode overlay mutex) prevents
// data races on non-atomic locations, and genuinely shared locations are
// accessed through atomics.
unsafe impl Send for PmemPool {}
// SAFETY: as for Send — the same access protocol synchronizes every location
// that is actually shared across threads.
unsafe impl Sync for PmemPool {}

impl PmemPool {
    /// Creates and initializes a fresh pool.
    pub fn create(opts: PoolOptions) -> Result<PmemPool, AllocError> {
        if opts.size < 2 * USER_BASE as usize {
            return Err(AllocError::PoolTooSmall);
        }
        let pool = Self::from_bytes(vec![0u8; opts.size], opts);
        {
            let _op = pool.begin_checked_op("pool_create");
            pool.write_word(OFF_MAGIC, MAGIC);
            pool.write_word(OFF_LEN, opts.size as u64);
            pool.write_word(OFF_FILE_ID, opts.file_id);
            // analyzer:allow(raw-publish) — header zero-init before the pool
            // is reachable; pool creation commits via the OFF_INIT publish.
            pool.write_word(OFF_ROOT, 0);
            pool.persist(OFF_MAGIC, 32);
            AllocHeader::init(&pool);
            // The init word is the pool's commit record: header and allocator
            // state are durable above, so the publish is p-atomic.
            pool.write_publish_word(OFF_INIT, INIT_DONE);
            pool.persist(OFF_INIT, 8);
        }
        Ok(pool)
    }

    /// Reopens a pool from a durable image (e.g. one produced by
    /// [`crash_image`](Self::crash_image)), running allocator recovery.
    pub fn reopen(image: Vec<u8>, opts: PoolOptions) -> Result<PmemPool, AllocError> {
        if image.len() < 2 * USER_BASE as usize {
            return Err(AllocError::PoolTooSmall);
        }
        let mut opts = opts;
        opts.size = image.len();
        let mut pool = Self::from_bytes(image, opts);
        if pool.read_word(OFF_MAGIC) != MAGIC || pool.read_word(OFF_INIT) != INIT_DONE {
            return Err(AllocError::BadImage);
        }
        // The image records its own file id; pointers inside it refer to it.
        pool.file_id = pool.read_word(OFF_FILE_ID);
        {
            let _op = pool.begin_checked_op("alloc_recover");
            AllocHeader::recover(&pool)?;
        }
        Ok(pool)
    }

    fn from_bytes(bytes: Vec<u8>, opts: PoolOptions) -> PmemPool {
        let len = bytes.len();
        // SAFETY: UnsafeCell<u8> has the same layout as u8.
        let buf: Box<[UnsafeCell<u8>]> = unsafe {
            let mut b = std::mem::ManuallyDrop::new(bytes);
            Vec::from_raw_parts(b.as_mut_ptr() as *mut UnsafeCell<u8>, b.len(), b.capacity())
        }
        .into_boxed_slice();
        PmemPool {
            buf,
            len,
            mode: opts.mode,
            file_id: opts.file_id,
            read_ns: AtomicU64::new(opts.latency.read_ns),
            write_ns: AtomicU64::new(opts.latency.write_ns),
            overlay: Mutex::new(Overlay::default()),
            fuse: AtomicI64::new(-1),
            alloc_lock: Mutex::new(()),
            stats: PoolStats::default(),
            checker_enabled: AtomicBool::new(opts.checker),
            checker: Mutex::new(CheckerState::default()),
        }
    }

    /// Pool ("file") id carried by pointers into this pool.
    #[inline]
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Pool capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Operating mode.
    #[inline]
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// Instrumentation counters.
    #[inline]
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Replaces the latency profile (e.g. between benchmark phases).
    pub fn set_latency(&self, latency: LatencyProfile) {
        self.read_ns.store(latency.read_ns, Ordering::Relaxed);
        self.write_ns.store(latency.write_ns, Ordering::Relaxed);
    }

    /// Current latency profile.
    pub fn latency(&self) -> LatencyProfile {
        LatencyProfile {
            read_ns: self.read_ns.load(Ordering::Relaxed),
            write_ns: self.write_ns.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        self.buf.as_ptr() as *mut u8
    }

    #[inline]
    fn check(&self, off: u64, len: usize) {
        assert!(
            self.in_bounds(off, len),
            "pmem access out of bounds: off={off:#x} len={len} cap={:#x}",
            self.len
        );
    }

    /// True if `[off, off + len)` lies inside the pool. Recovery code uses
    /// this to validate persistent pointers read from a (possibly corrupt)
    /// image *before* dereferencing them, so corruption surfaces as a typed
    /// error instead of the out-of-bounds panic the accessors would raise.
    #[inline]
    pub fn in_bounds(&self, off: u64, len: usize) -> bool {
        (off as usize)
            .checked_add(len)
            .is_some_and(|end| end <= self.len)
    }

    // ---------------------------------------------------------------- fuse

    /// Arms (Some) or disarms (None) the crash fuse. When armed, the pool
    /// panics with [`CrashPanic`] after `events` more persistence events
    /// (writes and persists each count as one).
    pub fn set_crash_fuse(&self, events: Option<u64>) {
        self.fuse
            .store(events.map_or(-1, |e| e as i64), Ordering::SeqCst);
    }

    /// Decrements the fuse; fires the injected crash at zero. `pre` events
    /// crash *before* taking effect (persists), `!pre` after (writes).
    #[inline]
    fn fuse_tick(&self) -> bool {
        if self.fuse.load(Ordering::Relaxed) < 0 {
            return false;
        }
        self.fuse.fetch_sub(1, Ordering::SeqCst) == 0
    }

    #[cold]
    fn crash_now(&self) -> ! {
        std::panic::panic_any(CrashPanic);
    }

    // -------------------------------------------------------------- writes

    /// Writes raw bytes at `off`. In tracked mode the data lands in the
    /// simulated cache and is *not durable* until `persist`ed.
    pub fn write_bytes(&self, off: u64, src: &[u8]) {
        self.write_bytes_inner(off, src, false);
    }

    fn write_bytes_inner(&self, off: u64, src: &[u8], publish: bool) {
        self.check(off, src.len());
        if self.checker_enabled.load(Ordering::Relaxed) {
            let op = check::current_op(self as *const PmemPool as usize);
            if self
                .checker
                .lock()
                .record_store(off, src.len(), publish, op)
            {
                PoolStats::add(&self.stats.checker_events, 1);
            }
        }
        match self.mode {
            // SAFETY: `check` bounds-checked [off, off+len); `base` points at
            // `len` bytes; `src` cannot alias `buf` (it is a fresh &[u8]).
            PoolMode::Direct => unsafe {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr(),
                    self.base().add(off as usize),
                    src.len(),
                );
            },
            PoolMode::Tracked => {
                let mut ov = self.overlay.lock();
                for (i, &b) in src.iter().enumerate() {
                    let abs = off + i as u64;
                    let line_off = abs & !(CACHE_LINE as u64 - 1);
                    let within = (abs - line_off) as usize;
                    let line = ov.lines.entry(line_off).or_insert_with(|| DirtyLine {
                        data: [0; CACHE_LINE],
                        dirty: 0,
                    });
                    line.data[within] = b;
                    line.dirty |= 1 << within;
                }
            }
        }
        if self.fuse_tick() {
            self.crash_now();
        }
    }

    /// Writes a POD value at `off`.
    #[inline]
    pub fn write_at<T: Pod>(&self, off: u64, val: &T) {
        // SAFETY: T: Pod guarantees no padding and a stable byte
        // representation, so viewing the value as bytes is defined.
        let bytes = unsafe {
            std::slice::from_raw_parts(val as *const T as *const u8, std::mem::size_of::<T>())
        };
        self.write_bytes(off, bytes);
    }

    /// Writes a POD value at `off`, marking it as a *publish* (commit
    /// record) for the durability checker: a p-atomic store that makes
    /// previously written state reachable or valid. The checker verifies
    /// its durability is ordered strictly after its operands'
    /// (see [`crate::check`]). Identical to [`write_at`](Self::write_at)
    /// when the checker is disabled.
    #[inline]
    pub fn write_publish_at<T: Pod>(&self, off: u64, val: &T) {
        // SAFETY: T: Pod guarantees no padding and a stable byte
        // representation, so viewing the value as bytes is defined.
        let bytes = unsafe {
            std::slice::from_raw_parts(val as *const T as *const u8, std::mem::size_of::<T>())
        };
        self.write_bytes_inner(off, bytes, true);
    }

    /// P-atomic 8-byte *publish* write (see
    /// [`write_publish_at`](Self::write_publish_at)): the flag/commit-word
    /// flavor used for allocator log opcodes, leaf bitmaps and status words.
    #[inline]
    pub fn write_publish_word(&self, off: u64, val: u64) {
        assert_eq!(
            off % PATOMIC_SIZE as u64,
            0,
            "p-atomic write must be 8-byte aligned"
        );
        self.write_publish_at(off, &val);
    }

    /// Multi-word *publish* write of raw bytes (see
    /// [`write_publish_at`](Self::write_publish_at)): used for
    /// dynamically sized commit records such as leaf append-buffer
    /// entries, whose length depends on the runtime layout. Must be
    /// 8-byte aligned and a whole number of words so each word commits
    /// p-atomically (the checker's per-word commit convention —
    /// recovery must tolerate any subset of the words surviving a
    /// crash, e.g. by validating a checksum stored in one word).
    #[inline]
    pub fn write_publish_bytes(&self, off: u64, src: &[u8]) {
        assert_eq!(
            off % PATOMIC_SIZE as u64,
            0,
            "p-atomic write must be 8-byte aligned"
        );
        assert_eq!(
            src.len() % PATOMIC_SIZE,
            0,
            "multi-word publish must be a whole number of words"
        );
        self.write_bytes_inner(off, src, true);
    }

    /// Writes a POD value through a typed persistent pointer.
    #[inline]
    pub fn write<T: Pod>(&self, p: PPtr<T>, val: &T) {
        debug_assert_eq!(p.file_id(), self.file_id, "pointer into a different pool");
        self.write_at(p.offset(), val);
    }

    /// P-atomic 8-byte write: must be 8-byte aligned so that a power failure
    /// can never tear it (the paper's p-atomicity assumption).
    #[inline]
    pub fn write_word(&self, off: u64, val: u64) {
        assert_eq!(
            off % PATOMIC_SIZE as u64,
            0,
            "p-atomic write must be 8-byte aligned"
        );
        self.write_at(off, &val);
    }

    /// Reads the 8-byte word at `off` (must be aligned).
    #[inline]
    pub fn read_word(&self, off: u64) -> u64 {
        assert_eq!(
            off % PATOMIC_SIZE as u64,
            0,
            "p-atomic read must be 8-byte aligned"
        );
        self.read_at(off)
    }

    // --------------------------------------------------------------- reads

    /// Reads raw bytes at `off` into `buf`, observing unflushed cached data
    /// (a CPU always sees its own cache).
    pub fn read_bytes(&self, off: u64, buf: &mut [u8]) {
        self.check(off, buf.len());
        // SAFETY: `check` bounds-checked the source range, and `buf` is a
        // distinct borrow so the copy cannot overlap the pool buffer.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base().add(off as usize),
                buf.as_mut_ptr(),
                buf.len(),
            );
        }
        if self.mode == PoolMode::Tracked {
            let ov = self.overlay.lock();
            for (i, b) in buf.iter_mut().enumerate() {
                let abs = off + i as u64;
                let line_off = abs & !(CACHE_LINE as u64 - 1);
                if let Some(line) = ov.lines.get(&line_off) {
                    let within = (abs - line_off) as usize;
                    if line.dirty & (1 << within) != 0 {
                        *b = line.data[within];
                    }
                }
            }
        }
    }

    /// Reads a POD value at `off`.
    #[inline]
    pub fn read_at<T: Pod>(&self, off: u64) -> T {
        self.check(off, std::mem::size_of::<T>());
        match self.mode {
            // SAFETY: `check` bounds-checked the range, and T: Pod means any
            // byte pattern is a valid T (read_unaligned handles alignment).
            PoolMode::Direct => unsafe {
                std::ptr::read_unaligned(self.base().add(off as usize) as *const T)
            },
            PoolMode::Tracked => {
                let mut val = std::mem::MaybeUninit::<T>::uninit();
                // SAFETY: the slice covers exactly the size_of::<T>() bytes
                // of `val`; u8 has no validity requirements, so exposing
                // uninitialized memory for overwriting is sound here.
                let buf = unsafe {
                    std::slice::from_raw_parts_mut(
                        val.as_mut_ptr() as *mut u8,
                        std::mem::size_of::<T>(),
                    )
                };
                self.read_bytes(off, buf);
                // SAFETY: read_bytes filled every byte, and T: Pod makes any
                // byte pattern a valid T.
                unsafe { val.assume_init() }
            }
        }
    }

    /// Reads a POD value through a typed persistent pointer.
    #[inline]
    pub fn read<T: Pod>(&self, p: PPtr<T>) -> T {
        debug_assert_eq!(p.file_id(), self.file_id, "pointer into a different pool");
        self.read_at(p.offset())
    }

    // --------------------------------------------------------- persistence

    /// Makes `[off, off+len)` durable: the paper's `Persist` function
    /// (fence + CLFLUSH per line + fence). Charges one write delay per line.
    pub fn persist(&self, off: u64, len: usize) {
        self.check(off, len);
        if self.fuse_tick() {
            // Crash *before* the flush takes effect: persist never returned,
            // so durability of this range is not guaranteed.
            self.crash_now();
        }
        let first = off & !(CACHE_LINE as u64 - 1);
        let last = (off + len.max(1) as u64 - 1) & !(CACHE_LINE as u64 - 1);
        let lines = (last - first) / CACHE_LINE as u64 + 1;
        if self.mode == PoolMode::Tracked {
            let mut ov = self.overlay.lock();
            let mut line_off = first;
            while line_off <= last {
                if let Some(line) = ov.lines.remove(&line_off) {
                    self.flush_line_to_durable(line_off, &line);
                }
                line_off += CACHE_LINE as u64;
            }
        }
        if self.checker_enabled.load(Ordering::Relaxed) {
            // Recorded only after `fuse_tick`: a persist interrupted by an
            // injected crash never flushed anything.
            let (redundant, unwritten, recorded) = self.checker.lock().record_flush(off, len);
            PoolStats::add(&self.stats.checker_redundant_flushes, redundant);
            PoolStats::add(&self.stats.checker_unwritten_flushes, unwritten);
            if recorded {
                PoolStats::add(&self.stats.checker_events, 1);
            }
        }
        PoolStats::add(&self.stats.persist_calls, 1);
        PoolStats::add(&self.stats.flushed_lines, lines);
        let write_ns = self.write_ns.load(Ordering::Relaxed);
        if write_ns != 0 {
            crate::latency::busy_wait_ns(write_ns * lines);
        }
    }

    fn flush_line_to_durable(&self, line_off: u64, line: &DirtyLine) {
        for i in 0..CACHE_LINE {
            if line.dirty & (1 << i) != 0 {
                // SAFETY: overlay lines are created only by bounds-checked
                // writes, so line_off + i is within the buffer; the overlay
                // mutex (held by the caller) serializes these plain stores.
                unsafe {
                    *self.base().add(line_off as usize + i) = line.data[i];
                }
            }
        }
    }

    /// Memory fence (ordering only; our simulator is sequentially consistent
    /// per-pool, so this is bookkeeping).
    pub fn fence(&self) {
        if self.checker_enabled.load(Ordering::Relaxed) && self.checker.lock().record_fence() {
            PoolStats::add(&self.stats.checker_events, 1);
        }
        PoolStats::add(&self.stats.fences, 1);
    }

    // ------------------------------------------------- durability checker

    /// Turns on the persist-order durability checker (see [`crate::check`]).
    /// Once enabled it stays enabled for the pool's lifetime.
    pub fn enable_durability_checker(&self) {
        self.checker_enabled.store(true, Ordering::SeqCst);
    }

    /// Whether the durability checker is recording.
    pub fn durability_checker_enabled(&self) -> bool {
        self.checker_enabled.load(Ordering::Relaxed)
    }

    /// Opens a *checked operation*: until the returned guard drops, stores
    /// and publishes issued by this thread are attributed to the operation,
    /// and on close the checker's detectors run over its event window
    /// (no-op while the checker is disabled). Operations nest; see
    /// [`crate::check`] for the event model and the detector rules.
    pub fn begin_checked_op(&self, label: &'static str) -> CheckedOp<'_> {
        if !self.checker_enabled.load(Ordering::Relaxed) {
            return CheckedOp::new(self, None);
        }
        let id = self.checker.lock().begin_op(label);
        check::push_op(self as *const PmemPool as usize, id);
        CheckedOp::new(self, Some(id))
    }

    /// Closes a checked operation (guard drop path).
    pub(crate) fn finish_checked_op(&self, id: u64, aborted: bool) {
        check::pop_op(self as *const PmemPool as usize, id);
        let (found, by_kind) = {
            let mut checker = self.checker.lock();
            let before = checker.kind_counts();
            let found = checker.end_op(id, aborted);
            let after = checker.kind_counts();
            let mut by_kind = [0u64; 4];
            for (d, (a, b)) in by_kind.iter_mut().zip(after.iter().zip(before.iter())) {
                *d = a - b;
            }
            (found, by_kind)
        };
        if !aborted {
            PoolStats::add(&self.stats.checker_ops, 1);
            PoolStats::add(&self.stats.checker_violations, found);
            let [missing, unordered, torn, multi] = by_kind;
            PoolStats::add(&self.stats.checker_missing_flush, missing);
            PoolStats::add(&self.stats.checker_unordered_publish, unordered);
            PoolStats::add(&self.stats.checker_torn_publish, torn);
            PoolStats::add(&self.stats.checker_unpublished_multi_word, multi);
        }
    }

    /// Snapshot of the checker's accumulated report.
    pub fn durability_report(&self) -> DurabilityReport {
        self.checker.lock().report()
    }

    /// Takes and resets the checker's accumulated report.
    pub fn take_durability_report(&self) -> DurabilityReport {
        self.checker.lock().take_report()
    }

    /// Panics with a rendered report if any durability violation was found.
    #[track_caller]
    pub fn assert_durability_clean(&self) {
        let report = self.durability_report();
        assert!(report.is_clean(), "{}", report.render());
    }

    /// Charges SCM read latency for the cache lines covering `[off, off+len)`.
    ///
    /// Trees call this once per leaf cache line they actually inspect — the
    /// simulator's equivalent of an SCM cache miss.
    #[inline]
    pub fn touch_read(&self, off: u64, len: usize) {
        let first = off & !(CACHE_LINE as u64 - 1);
        let last = (off + len.max(1) as u64 - 1) & !(CACHE_LINE as u64 - 1);
        let lines = (last - first) / CACHE_LINE as u64 + 1;
        PoolStats::add(&self.stats.read_lines, lines);
        let read_ns = self.read_ns.load(Ordering::Relaxed);
        if read_ns != 0 {
            crate::latency::busy_wait_ns(read_ns * lines);
        }
    }

    // ------------------------------------------------------------- atomics

    /// A reference to a *transient* atomic byte inside the pool (leaf locks).
    ///
    /// Deliberately bypasses the tracked-mode overlay: the paper never
    /// persists leaf-lock writes; recovery resets them.
    #[inline]
    pub fn atomic_u8(&self, off: u64) -> &AtomicU8 {
        self.check(off, 1);
        // SAFETY: the byte is in bounds, lives in UnsafeCell storage, and
        // AtomicU8 has the same layout as u8; concurrent access through the
        // returned reference is what atomics are for.
        unsafe { &*(self.base().add(off as usize) as *const AtomicU8) }
    }

    /// A reference to a transient atomic u64 inside the pool.
    #[inline]
    pub fn atomic_u64(&self, off: u64) -> &AtomicU64 {
        self.check(off, 8);
        assert_eq!(off % 8, 0, "atomic u64 must be 8-byte aligned");
        // SAFETY: the 8 bytes are in bounds and 8-byte aligned (asserted;
        // the buffer base is allocator-aligned well past 8), live in
        // UnsafeCell storage, and AtomicU64 is layout-compatible with u64.
        unsafe { &*(self.base().add(off as usize) as *const AtomicU64) }
    }

    // ---------------------------------------------------------------- root

    /// Persistently stores the application root object pointer (p-atomic).
    ///
    /// The root pointer is a commit record (it makes an object graph
    /// reachable after recovery), so the store goes through the publish path
    /// and the caller must have persisted the object it points to first.
    pub fn set_root(&self, off: u64) {
        self.write_publish_word(OFF_ROOT, off);
        self.persist(OFF_ROOT, 8);
    }

    /// Reads the application root object pointer (0 if unset).
    pub fn root(&self) -> u64 {
        self.read_word(OFF_ROOT)
    }

    // ---------------------------------------------------------------- files

    /// Writes the pool's durable image to a file (a clean shutdown to
    /// simulated "disk"). Together with [`load`](Self::load) this gives the
    /// library real cross-process persistence: the simulated SCM becomes an
    /// ordinary file between runs.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.clean_image())
    }

    /// Loads a pool previously [`save`](Self::save)d, running allocator
    /// recovery (equivalent to [`reopen`](Self::reopen) from a file).
    pub fn load(path: impl AsRef<std::path::Path>, opts: PoolOptions) -> std::io::Result<PmemPool> {
        let bytes = std::fs::read(path)?;
        Self::reopen(bytes, opts).map_err(std::io::Error::other)
    }

    // ------------------------------------------------------------- crashes

    /// Materializes the durable image after a simulated power failure.
    ///
    /// Flushed data is intact. Each *8-byte word* containing unflushed bytes
    /// independently either reaches SCM (the CPU happened to evict it) or is
    /// lost, decided by `seed` — the strictest failure model consistent with
    /// the paper's 8-byte p-atomicity assumption. In direct mode everything
    /// is considered durable (direct mode cannot lose data).
    pub fn crash_image(&self, seed: u64) -> Vec<u8> {
        let mut image = vec![0u8; self.len];
        // SAFETY: both buffers are exactly `len` bytes and cannot overlap
        // (`image` is freshly allocated).
        unsafe {
            std::ptr::copy_nonoverlapping(self.base() as *const u8, image.as_mut_ptr(), self.len);
        }
        if self.mode == PoolMode::Tracked {
            // The base copy above contains only durable data for tracked
            // writes (they live in the overlay), but transient atomics were
            // written directly; that is fine — recovery resets them.
            let ov = self.overlay.lock();
            let mut rng = StdRng::seed_from_u64(seed);
            for (&line_off, line) in ov.lines.iter() {
                for word in 0..CACHE_LINE / PATOMIC_SIZE {
                    let word_mask = 0xFFu64 << (word * 8);
                    if line.dirty & word_mask == 0 {
                        continue;
                    }
                    if rng.gen_bool(0.5) {
                        // The word was evicted before the crash: its dirty
                        // bytes reached SCM.
                        for i in word * 8..word * 8 + 8 {
                            if line.dirty & (1 << i) != 0 {
                                image[line_off as usize + i] = line.data[i];
                            }
                        }
                    }
                }
            }
        }
        image
    }

    /// Durable image with *all* pending data flushed (a clean shutdown).
    pub fn clean_image(&self) -> Vec<u8> {
        let mut image = vec![0u8; self.len];
        // SAFETY: both buffers are exactly `len` bytes and cannot overlap
        // (`image` is freshly allocated).
        unsafe {
            std::ptr::copy_nonoverlapping(self.base() as *const u8, image.as_mut_ptr(), self.len);
        }
        if self.mode == PoolMode::Tracked {
            let ov = self.overlay.lock();
            for (&line_off, line) in ov.lines.iter() {
                for i in 0..CACHE_LINE {
                    if line.dirty & (1 << i) != 0 {
                        image[line_off as usize + i] = line.data[i];
                    }
                }
            }
        }
        image
    }

    /// Number of dirty (unflushed) cache lines in the simulated cache.
    pub fn dirty_lines(&self) -> usize {
        self.overlay.lock().lines.len()
    }
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("file_id", &self.file_id)
            .field("capacity", &self.len)
            .field("mode", &self.mode)
            .field("latency", &self.latency())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_pool() -> PmemPool {
        PmemPool::create(PoolOptions::direct(1 << 20)).unwrap()
    }

    fn tracked_pool() -> PmemPool {
        PmemPool::create(PoolOptions::tracked(1 << 20)).unwrap()
    }

    #[test]
    fn create_initializes_header() {
        let pool = direct_pool();
        assert_eq!(pool.read_word(OFF_MAGIC), MAGIC);
        assert_eq!(pool.read_word(OFF_INIT), INIT_DONE);
        assert_eq!(pool.root(), 0);
    }

    #[test]
    fn write_read_roundtrip_direct() {
        let pool = direct_pool();
        pool.write_at(USER_BASE, &0xDEADBEEFu64);
        assert_eq!(pool.read_at::<u64>(USER_BASE), 0xDEADBEEF);
        let p: PPtr<u32> = PPtr::new(pool.file_id(), USER_BASE + 64);
        pool.write(p, &42u32);
        assert_eq!(pool.read(p), 42u32);
    }

    #[test]
    fn tracked_reads_see_own_unflushed_writes() {
        let pool = tracked_pool();
        pool.write_at(USER_BASE, &7u64);
        // Not persisted, but the CPU sees its own cache.
        assert_eq!(pool.read_at::<u64>(USER_BASE), 7);
        assert_eq!(pool.dirty_lines(), 1);
        pool.persist(USER_BASE, 8);
        assert_eq!(pool.dirty_lines(), 0);
        assert_eq!(pool.read_at::<u64>(USER_BASE), 7);
    }

    #[test]
    fn unflushed_data_can_be_lost_in_crash() {
        let pool = tracked_pool();
        pool.write_at(USER_BASE, &1u64);
        pool.persist(USER_BASE, 8);
        pool.write_at(USER_BASE + 8, &2u64); // never persisted
                                             // Across seeds, the unflushed word must sometimes be lost and
                                             // sometimes survive; the flushed one must always survive.
        let mut lost = false;
        let mut kept = false;
        for seed in 0..32 {
            let img = pool.crash_image(seed);
            let flushed = u64::from_le_bytes(img[USER_BASE as usize..][..8].try_into().unwrap());
            let pending =
                u64::from_le_bytes(img[USER_BASE as usize + 8..][..8].try_into().unwrap());
            assert_eq!(flushed, 1, "flushed data must survive any crash");
            match pending {
                0 => lost = true,
                2 => kept = true,
                other => panic!("torn 8-byte word: {other}"),
            }
        }
        assert!(lost && kept, "both outcomes must be possible");
    }

    #[test]
    fn clean_image_flushes_everything() {
        let pool = tracked_pool();
        pool.write_at(USER_BASE, &99u64);
        let img = pool.clean_image();
        let v = u64::from_le_bytes(img[USER_BASE as usize..][..8].try_into().unwrap());
        assert_eq!(v, 99);
    }

    #[test]
    fn reopen_clean_image_preserves_data() {
        let pool = tracked_pool();
        pool.write_at(USER_BASE + 128, &0xABCDu64);
        pool.persist(USER_BASE + 128, 8);
        let img = pool.clean_image();
        let pool2 = PmemPool::reopen(img, PoolOptions::tracked(0)).unwrap();
        assert_eq!(pool2.read_at::<u64>(USER_BASE + 128), 0xABCD);
        assert_eq!(pool2.file_id(), pool.file_id());
    }

    #[test]
    fn reopen_rejects_garbage() {
        assert!(matches!(
            PmemPool::reopen(vec![0u8; 1 << 20], PoolOptions::tracked(0)),
            Err(AllocError::BadImage)
        ));
    }

    #[test]
    fn crash_fuse_fires_after_n_events() {
        let pool = tracked_pool();
        pool.set_crash_fuse(Some(2));
        pool.write_at(USER_BASE, &1u64); // event 1 (fuse -> 1)
        pool.write_at(USER_BASE + 8, &2u64); // event 2 (fuse -> 0)
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.write_at(USER_BASE + 16, &3u64); // event 3: crash
        }));
        let err = r.unwrap_err();
        assert!(crash_is_injected(err.as_ref()));
    }

    #[test]
    fn persist_crash_fires_before_flush() {
        let pool = tracked_pool();
        pool.write_at(USER_BASE, &5u64);
        pool.set_crash_fuse(Some(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.persist(USER_BASE, 8);
        }));
        assert!(crash_is_injected(r.unwrap_err().as_ref()));
        // The flush never happened: the line must still be dirty.
        assert_eq!(pool.dirty_lines(), 1);
    }

    #[test]
    fn save_load_roundtrip_via_file() {
        let pool = tracked_pool();
        pool.write_at(USER_BASE + 64, &0x5AFEu64);
        pool.persist(USER_BASE + 64, 8);
        pool.write_at(USER_BASE + 72, &0xBADu64); // unflushed: still saved
        let path = std::env::temp_dir().join(format!("fpt-pool-{}.img", std::process::id()));
        pool.save(&path).unwrap();
        let pool2 = PmemPool::load(&path, PoolOptions::tracked(0)).unwrap();
        assert_eq!(pool2.read_at::<u64>(USER_BASE + 64), 0x5AFE);
        assert_eq!(pool2.read_at::<u64>(USER_BASE + 72), 0xBAD);
        std::fs::remove_file(&path).unwrap();
        assert!(PmemPool::load(&path, PoolOptions::tracked(0)).is_err());
    }

    #[test]
    fn load_rejects_corrupt_file() {
        let path = std::env::temp_dir().join(format!("fpt-bad-{}.img", std::process::id()));
        std::fs::write(&path, vec![7u8; 1 << 20]).unwrap();
        assert!(PmemPool::load(&path, PoolOptions::tracked(0)).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn root_pointer_roundtrip() {
        let pool = direct_pool();
        pool.set_root(USER_BASE + 256);
        assert_eq!(pool.root(), USER_BASE + 256);
    }

    #[test]
    fn atomics_bypass_overlay() {
        let pool = tracked_pool();
        let a = pool.atomic_u8(USER_BASE);
        a.store(1, Ordering::SeqCst);
        assert_eq!(pool.atomic_u8(USER_BASE).load(Ordering::SeqCst), 1);
        // No dirty line was created: the write went straight to memory.
        assert_eq!(pool.dirty_lines(), 0);
    }

    #[test]
    fn checker_kind_counters_reach_stats() {
        let pool = PmemPool::create(PoolOptions::direct(1 << 20).with_checker()).unwrap();
        pool.stats().reset();
        {
            // Store dropped without a flush: MissingFlush.
            let _op = pool.begin_checked_op("kind_missing_flush");
            pool.write_at(USER_BASE, &7u64);
        }
        {
            // Operand flushed by the same persist call as the commit record:
            // UnorderedPublish (the commit may become durable first).
            let _op = pool.begin_checked_op("kind_unordered_publish");
            pool.write_at(USER_BASE + 64, &1u64);
            pool.write_publish_word(USER_BASE + 128, 2);
            pool.persist(USER_BASE + 64, 72);
        }
        let s = pool.stats().snapshot();
        assert_eq!(s.checker_ops, 2);
        assert_eq!(s.checker_missing_flush, 1);
        assert_eq!(s.checker_unordered_publish, 1);
        assert_eq!(s.checker_torn_publish, 0);
        assert_eq!(s.checker_unpublished_multi_word, 0);
        assert_eq!(s.checker_violations, 2);
        // The pool-level report carries the same per-kind tallies.
        let r = pool.take_durability_report();
        assert_eq!(r.missing_flush, 1);
        assert_eq!(r.unordered_publish, 1);
    }

    #[test]
    fn stats_count_flush_traffic() {
        let pool = direct_pool();
        pool.stats().reset();
        pool.write_at(USER_BASE, &[0u8; 256]);
        pool.persist(USER_BASE, 256);
        let s = pool.stats().snapshot();
        assert_eq!(s.persist_calls, 1);
        assert_eq!(s.flushed_lines, 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let pool = direct_pool();
        pool.write_at(pool.capacity() as u64 - 4, &0u64);
    }

    #[test]
    fn unaligned_word_write_rejected() {
        let pool = direct_pool();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.write_word(USER_BASE + 1, 1)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn tracked_write_spanning_lines() {
        let pool = tracked_pool();
        let data = [0xAAu8; 200];
        let off = USER_BASE + 40; // deliberately misaligned start
        pool.write_bytes(off, &data);
        let mut back = [0u8; 200];
        pool.read_bytes(off, &mut back);
        assert_eq!(back, data);
        pool.persist(off, 200);
        let mut back2 = [0u8; 200];
        pool.read_bytes(off, &mut back2);
        assert_eq!(back2, data);
        assert_eq!(pool.dirty_lines(), 0);
    }
}
