//! Simulated Storage Class Memory (SCM) for the FPTree reproduction.
//!
//! The FPTree paper evaluates on an SCM emulation platform: ordinary DRAM
//! whose access latency to a reserved region is raised by a special BIOS,
//! managed by a persistent-memory-aware file system (PMFS / ext4-DAX) that
//! maps it directly into the address space. This crate provides the software
//! equivalent:
//!
//! * [`PmemPool`] — a byte-addressable persistent memory pool ("file") with
//!   load/store access, explicit persistence primitives ([`PmemPool::persist`],
//!   [`PmemPool::fence`]) and configurable extra latency per SCM cache-line
//!   access ([`LatencyProfile`]).
//! * [`PPtr`] — 16-byte persistent pointers (file id + offset), the paper's
//!   answer to address-space layout changing across restarts (§2 "Data
//!   recovery").
//! * A crash-safe **persistent allocator** whose interface takes a reference
//!   to a persistent pointer *inside the caller's persistent data structure*
//!   and persists the allocation result into it before returning, splitting
//!   leak discovery between allocator and data structure (§2 "Memory leaks").
//! * **Crash simulation** — in [`PoolMode::Tracked`] mode, stores land in a
//!   simulated CPU-cache overlay and reach the durable image only when
//!   flushed; [`PmemPool::crash_image`] materializes the durable state after
//!   a crash in which unflushed data is lost at 8-byte granularity (the
//!   paper's p-atomicity assumption, §2 "Partial writes"). A write/persist
//!   *fuse* ([`PmemPool::set_crash_fuse`]) lets tests inject a crash at any
//!   point inside an operation.
//!
//! Benchmarks use [`PoolMode::Direct`] where stores hit the backing memory
//! immediately and `persist` only costs (emulated) latency and bookkeeping.
//!
//! The [`check`] module adds a pmemcheck-style **durability checker** on
//! top of tracked mode: an event trace of stores / publishes / flushes /
//! fences, analyzed per *checked operation* for missing flushes, unordered
//! commit records, torn publishes and redundant flush traffic.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod alloc;
pub mod check;
mod latency;
mod pool;
pub mod poolset;
mod pptr;
mod stats;

pub use alloc::{AllocError, AllocStats, BLOCK_HEADER_SIZE};
pub use check::{CheckedOp, DurabilityReport, Violation, ViolationKind};
pub use latency::{busy_wait_ns, LatencyProfile};
pub use pool::{
    crash_is_injected, CrashPanic, PmemPool, PoolMode, PoolOptions, CACHE_LINE, ROOT_SLOT,
    USER_BASE,
};
pub use poolset::{create_pools, load_pools, save_pools, shard_file_count, shard_path};
pub use pptr::{PPtr, Pod, RawPPtr, NULL_OFFSET};
pub use stats::{PoolStats, StatsSnapshot};

/// Result alias for pool construction / allocation failures.
pub type Result<T> = std::result::Result<T, AllocError>;
