//! Volatile instrumentation counters for a pool.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing the persistence traffic of a pool.
///
/// All counters are volatile (they do not survive a restart) and updated with
/// relaxed atomics, so they are cheap enough to leave enabled in benchmarks.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Cache lines written back to SCM by `persist` calls.
    pub flushed_lines: AtomicU64,
    /// Calls to `persist` (each models fence + flush(es) + fence).
    pub persist_calls: AtomicU64,
    /// Explicit memory fences.
    pub fences: AtomicU64,
    /// Cache lines charged with SCM read latency via `touch_read`.
    pub read_lines: AtomicU64,
    /// Successful persistent allocations.
    pub allocs: AtomicU64,
    /// Successful persistent deallocations.
    pub deallocs: AtomicU64,
    /// Net bytes currently allocated (user sizes, excluding block headers).
    pub bytes_live: AtomicU64,
    /// High-water mark of the bump cursor (total SCM footprint).
    pub bump_high_water: AtomicU64,
}

impl PoolStats {
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn sub(counter: &AtomicU64, n: u64) {
        counter.fetch_sub(n, Ordering::Relaxed);
    }

    /// Snapshot of all counters as plain integers.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            flushed_lines: self.flushed_lines.load(Ordering::Relaxed),
            persist_calls: self.persist_calls.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            read_lines: self.read_lines.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            bytes_live: self.bytes_live.load(Ordering::Relaxed),
            bump_high_water: self.bump_high_water.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (between benchmark phases).
    pub fn reset(&self) {
        self.flushed_lines.store(0, Ordering::Relaxed);
        self.persist_calls.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.read_lines.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.deallocs.store(0, Ordering::Relaxed);
        // bytes_live / bump_high_water track state, not traffic: keep them.
    }
}

/// Plain-integer snapshot of [`PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub flushed_lines: u64,
    pub persist_calls: u64,
    pub fences: u64,
    pub read_lines: u64,
    pub allocs: u64,
    pub deallocs: u64,
    pub bytes_live: u64,
    pub bump_high_water: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears_traffic_but_not_state() {
        let s = PoolStats::default();
        PoolStats::add(&s.flushed_lines, 5);
        PoolStats::add(&s.bytes_live, 100);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.flushed_lines, 0);
        assert_eq!(snap.bytes_live, 100);
    }
}
