//! Volatile instrumentation counters for a pool.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing the persistence traffic of a pool.
///
/// All counters are volatile (they do not survive a restart) and updated with
/// relaxed atomics, so they are cheap enough to leave enabled in benchmarks.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Cache lines written back to SCM by `persist` calls.
    pub flushed_lines: AtomicU64,
    /// Calls to `persist` (each models fence + flush(es) + fence).
    pub persist_calls: AtomicU64,
    /// Explicit memory fences.
    pub fences: AtomicU64,
    /// Cache lines charged with SCM read latency via `touch_read`.
    pub read_lines: AtomicU64,
    /// Successful persistent allocations.
    pub allocs: AtomicU64,
    /// Successful persistent deallocations.
    pub deallocs: AtomicU64,
    /// Net bytes currently allocated (user sizes, excluding block headers).
    pub bytes_live: AtomicU64,
    /// High-water mark of the bump cursor (total SCM footprint).
    pub bump_high_water: AtomicU64,
    /// Checked operations analyzed by the durability checker.
    pub checker_ops: AtomicU64,
    /// Trace events recorded by the durability checker.
    pub checker_events: AtomicU64,
    /// Durability-protocol violations found by the checker.
    pub checker_violations: AtomicU64,
    /// Checker violations from the missing-flush detector.
    pub checker_missing_flush: AtomicU64,
    /// Checker violations from the unordered-publish detector.
    pub checker_unordered_publish: AtomicU64,
    /// Checker violations from the torn-publish detector.
    pub checker_torn_publish: AtomicU64,
    /// Checker violations from the unpublished-multi-word detector.
    pub checker_unpublished_multi_word: AtomicU64,
    /// Checker warning: flushes of lines with nothing unflushed on them.
    pub checker_redundant_flushes: AtomicU64,
    /// Checker warning: flushes of lines never written to.
    pub checker_unwritten_flushes: AtomicU64,
}

impl PoolStats {
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn sub(counter: &AtomicU64, n: u64) {
        counter.fetch_sub(n, Ordering::Relaxed);
    }

    /// Snapshot of all counters as plain integers.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            flushed_lines: self.flushed_lines.load(Ordering::Relaxed),
            persist_calls: self.persist_calls.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            read_lines: self.read_lines.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            bytes_live: self.bytes_live.load(Ordering::Relaxed),
            bump_high_water: self.bump_high_water.load(Ordering::Relaxed),
            checker_ops: self.checker_ops.load(Ordering::Relaxed),
            checker_events: self.checker_events.load(Ordering::Relaxed),
            checker_violations: self.checker_violations.load(Ordering::Relaxed),
            checker_missing_flush: self.checker_missing_flush.load(Ordering::Relaxed),
            checker_unordered_publish: self.checker_unordered_publish.load(Ordering::Relaxed),
            checker_torn_publish: self.checker_torn_publish.load(Ordering::Relaxed),
            checker_unpublished_multi_word: self
                .checker_unpublished_multi_word
                .load(Ordering::Relaxed),
            checker_redundant_flushes: self.checker_redundant_flushes.load(Ordering::Relaxed),
            checker_unwritten_flushes: self.checker_unwritten_flushes.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (between benchmark phases).
    pub fn reset(&self) {
        self.flushed_lines.store(0, Ordering::Relaxed);
        self.persist_calls.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.read_lines.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.deallocs.store(0, Ordering::Relaxed);
        self.checker_ops.store(0, Ordering::Relaxed);
        self.checker_events.store(0, Ordering::Relaxed);
        self.checker_violations.store(0, Ordering::Relaxed);
        self.checker_missing_flush.store(0, Ordering::Relaxed);
        self.checker_unordered_publish.store(0, Ordering::Relaxed);
        self.checker_torn_publish.store(0, Ordering::Relaxed);
        self.checker_unpublished_multi_word
            .store(0, Ordering::Relaxed);
        self.checker_redundant_flushes.store(0, Ordering::Relaxed);
        self.checker_unwritten_flushes.store(0, Ordering::Relaxed);
        // bytes_live / bump_high_water track state, not traffic: keep them.
    }
}

/// Plain-integer snapshot of [`PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Cache lines written back to SCM by `persist` calls.
    pub flushed_lines: u64,
    /// Calls to `persist`.
    pub persist_calls: u64,
    /// Explicit memory fences.
    pub fences: u64,
    /// Cache lines charged with SCM read latency.
    pub read_lines: u64,
    /// Successful persistent allocations.
    pub allocs: u64,
    /// Successful persistent deallocations.
    pub deallocs: u64,
    /// Net bytes currently allocated.
    pub bytes_live: u64,
    /// High-water mark of the bump cursor.
    pub bump_high_water: u64,
    /// Checked operations analyzed by the durability checker.
    pub checker_ops: u64,
    /// Trace events recorded by the durability checker.
    pub checker_events: u64,
    /// Durability-protocol violations found by the checker.
    pub checker_violations: u64,
    /// Checker violations from the missing-flush detector.
    pub checker_missing_flush: u64,
    /// Checker violations from the unordered-publish detector.
    pub checker_unordered_publish: u64,
    /// Checker violations from the torn-publish detector.
    pub checker_torn_publish: u64,
    /// Checker violations from the unpublished-multi-word detector.
    pub checker_unpublished_multi_word: u64,
    /// Checker warning: flushes of clean lines.
    pub checker_redundant_flushes: u64,
    /// Checker warning: flushes of never-written lines.
    pub checker_unwritten_flushes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears_traffic_but_not_state() {
        let s = PoolStats::default();
        PoolStats::add(&s.flushed_lines, 5);
        PoolStats::add(&s.bytes_live, 100);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.flushed_lines, 0);
        assert_eq!(snap.bytes_live, 100);
    }
}
