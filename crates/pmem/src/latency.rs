//! SCM latency emulation.
//!
//! The paper's evaluation platform injects extra latency into a reserved
//! DRAM region via a special BIOS, sweeping SCM latency from 90 ns (plain
//! DRAM) to 650 ns. We reproduce the effect in software: trees charge one
//! *read touch* per SCM cache line they inspect and the pool charges one
//! *write delay* per cache line it flushes. The delays are calibrated
//! busy-waits, so they consume CPU exactly like a stalled load would.

use std::time::Instant;

/// Baseline DRAM latency of the paper's platform in nanoseconds. Emulated
/// SCM latencies are expressed as *totals* (like the paper's 90/160/250/450/
/// 650 ns axis); the injected delay is the excess over this baseline.
pub const DRAM_BASELINE_NS: u64 = 90;

/// Extra latency charged on SCM accesses, per cache line.
///
/// `read_ns`/`write_ns` are the *additional* nanoseconds on top of a normal
/// DRAM access. Use [`LatencyProfile::from_total`] to build a profile from a
/// paper-style total-latency figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyProfile {
    /// Additional nanoseconds per cache-line read from SCM.
    pub read_ns: u64,
    /// Additional nanoseconds per cache-line write-back (flush) to SCM.
    pub write_ns: u64,
}

impl LatencyProfile {
    /// No injected latency: SCM behaves exactly like DRAM (the paper's 90 ns
    /// ext4-DAX configuration).
    pub const DRAM: LatencyProfile = LatencyProfile {
        read_ns: 0,
        write_ns: 0,
    };

    /// Builds a profile from a total SCM latency in nanoseconds, e.g. 650.
    ///
    /// The paper's platform applies the same latency to reads and writes;
    /// write asymmetry can be modeled by adjusting `write_ns` afterwards.
    pub fn from_total(total_ns: u64) -> Self {
        let extra = total_ns.saturating_sub(DRAM_BASELINE_NS);
        LatencyProfile {
            read_ns: extra,
            write_ns: extra,
        }
    }

    /// True if no delay would ever be injected.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.read_ns == 0 && self.write_ns == 0
    }

    /// Charges the read delay for `lines` cache lines.
    #[inline]
    pub fn delay_read(&self, lines: u64) {
        if self.read_ns != 0 {
            busy_wait_ns(self.read_ns * lines);
        }
    }

    /// Charges the write delay for `lines` cache lines.
    #[inline]
    pub fn delay_write(&self, lines: u64) {
        if self.write_ns != 0 {
            busy_wait_ns(self.write_ns * lines);
        }
    }
}

/// Busy-waits for approximately `ns` nanoseconds.
///
/// Spin-based (no syscall, no yield): an emulated SCM stall occupies the CPU
/// just like a real memory stall. Accuracy is bounded below by the clock
/// read; on current Linux/vDSO that is ~20 ns, adequate for the 70–560 ns
/// excess latencies the paper sweeps.
#[inline]
pub fn busy_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_total_subtracts_dram_baseline() {
        let p = LatencyProfile::from_total(650);
        assert_eq!(p.read_ns, 560);
        assert_eq!(p.write_ns, 560);
        assert!(LatencyProfile::from_total(90).is_zero());
        assert!(LatencyProfile::from_total(10).is_zero());
    }

    #[test]
    fn zero_profile_returns_immediately() {
        let p = LatencyProfile::DRAM;
        let t = Instant::now();
        for _ in 0..10_000 {
            p.delay_read(1);
            p.delay_write(1);
        }
        // 20k no-op delays must be far under a millisecond.
        assert!(t.elapsed().as_millis() < 50);
    }

    #[test]
    fn busy_wait_waits_at_least_requested() {
        let t = Instant::now();
        busy_wait_ns(200_000); // 200 µs, comfortably above timer noise
        assert!(t.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn delay_scales_with_lines() {
        let p = LatencyProfile {
            read_ns: 50_000,
            write_ns: 0,
        };
        let t = Instant::now();
        p.delay_read(4);
        assert!(t.elapsed().as_nanos() >= 200_000);
    }
}
