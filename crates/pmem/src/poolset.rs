//! Multi-pool ("shard set") construction, save, and load paths.
//!
//! A keyspace-sharded tree runs over N independent pools — one SCM "file"
//! per shard, so each shard has its own allocator, micro-log set, and
//! durability domain. This module provides the pool-level plumbing: create
//! N pools with distinct file ids, round-trip them through a family of
//! shard files (`base.shard0`, `base.shard1`, ...), and rediscover the
//! shard count from the files on disk at open time.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::alloc::AllocError;
use crate::pool::{PmemPool, PoolOptions};

/// Path of shard `i`'s pool file under `base`: `<base>.shard<i>`.
pub fn shard_path(base: impl AsRef<Path>, i: usize) -> PathBuf {
    let base = base.as_ref();
    let mut name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(&format!(".shard{i}"));
    base.with_file_name(name)
}

/// Number of consecutive shard files present under `base`, probing
/// `base.shard0`, `base.shard1`, ... until the first missing file.
pub fn shard_file_count(base: impl AsRef<Path>) -> usize {
    let mut n = 0;
    while shard_path(base.as_ref(), n).exists() {
        n += 1;
    }
    n
}

/// Creates `n` fresh pools, each of `opts.size` bytes; shard `i` gets file
/// id `opts.file_id + i`, so persistent pointers from different shards can
/// never be confused with each other.
pub fn create_pools(n: usize, opts: PoolOptions) -> Result<Vec<Arc<PmemPool>>, AllocError> {
    if n == 0 {
        return Err(AllocError::PoolTooSmall);
    }
    (0..n)
        .map(|i| {
            let shard_opts = PoolOptions {
                file_id: opts.file_id + i as u64,
                ..opts
            };
            PmemPool::create(shard_opts).map(Arc::new)
        })
        .collect()
}

/// Saves every pool to its shard file under `base` (see [`shard_path`]).
pub fn save_pools(pools: &[Arc<PmemPool>], base: impl AsRef<Path>) -> std::io::Result<()> {
    for (i, pool) in pools.iter().enumerate() {
        pool.save(shard_path(base.as_ref(), i))?;
    }
    Ok(())
}

/// Loads the full family of shard files under `base`, probing from
/// `base.shard0` upward. Fails with `NotFound` if no shard file exists;
/// each pool keeps the mode/latency from `opts` (size comes from the file).
pub fn load_pools(
    base: impl AsRef<Path>,
    opts: PoolOptions,
) -> std::io::Result<Vec<Arc<PmemPool>>> {
    let n = shard_file_count(base.as_ref());
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no shard files under {}", base.as_ref().display()),
        ));
    }
    (0..n)
        .map(|i| PmemPool::load(shard_path(base.as_ref(), i), opts).map(Arc::new))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_path_appends_suffix() {
        assert_eq!(
            shard_path("/tmp/data.pool", 3),
            PathBuf::from("/tmp/data.pool.shard3")
        );
        assert_eq!(shard_path("rel.img", 0), PathBuf::from("rel.img.shard0"));
    }

    #[test]
    fn create_pools_assigns_distinct_file_ids() {
        let pools = create_pools(3, PoolOptions::direct(1 << 20)).unwrap();
        let ids: Vec<u64> = pools.iter().map(|p| p.file_id()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn create_zero_pools_is_an_error() {
        assert!(create_pools(0, PoolOptions::direct(1 << 20)).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fptree-poolset-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("set.pool");
        let pools = create_pools(2, PoolOptions::direct(1 << 20)).unwrap();
        pools[0].set_root(111);
        pools[1].set_root(222);
        save_pools(&pools, &base).unwrap();
        assert_eq!(shard_file_count(&base), 2);
        let loaded = load_pools(&base, PoolOptions::direct(0)).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].root(), 111);
        assert_eq!(loaded[1].root(), 222);
        assert_eq!(loaded[1].file_id(), 2);
        std::fs::remove_dir_all(&dir).ok();
        assert!(load_pools(&base, PoolOptions::direct(0)).is_err());
    }
}
