//! Persist-order durability checker: a pmemcheck-style analysis layer.
//!
//! SCM code is only correct if every store is explicitly flushed, and if
//! *commit records* (the 8-byte p-atomic writes that make an operation
//! visible: allocator log opcodes, leaf bitmaps, next pointers, tree status
//! words) reach durability strictly *after* the data they guard. Violations
//! of this discipline do not fail under normal execution — they only
//! manifest as corruption after a power failure at exactly the wrong
//! instruction. The checker makes them fail deterministically instead, the
//! way Valgrind's pmemcheck does for real persistent memory programs.
//!
//! # Event model
//!
//! When the checker is enabled ([`PmemPool::enable_durability_checker`](crate::PmemPool::enable_durability_checker) or
//! [`PoolOptions::with_checker`](crate::PoolOptions::with_checker)), the
//! pool records an append-only trace of persistence events, each stamped
//! with a monotonically increasing *epoch*:
//!
//! * **Store** — a tracked write (`write_bytes` / `write_at` /
//!   `write_word`), with offset and length;
//! * **Publish** — a store issued through the publish API
//!   ([`PmemPool::write_publish_word`](crate::PmemPool::write_publish_word) / [`PmemPool::write_publish_at`](crate::PmemPool::write_publish_at)),
//!   marking it as a commit record whose durability must be ordered after
//!   its operands;
//! * **Flush** — a `persist` call, covering a cache-line range;
//! * **Fence** — an explicit `fence` call (bookkeeping only; the simulator
//!   is sequentially consistent per pool, so `persist` already implies the
//!   paper's fence–flush–fence sequence).
//!
//! Transient in-pool atomics (`atomic_u8` / `atomic_u64`, the leaf locks)
//! bypass the trace by design: the paper never persists lock words and
//! recovery resets them.
//!
//! Stores and publishes are attributed to the innermost *checked operation*
//! open on the current thread ([`PmemPool::begin_checked_op`](crate::PmemPool::begin_checked_op)); flushes and
//! fences are global effects and are visible to every open operation.
//! Operations nest: a tree insert that allocates opens a nested allocator
//! operation, and each is analyzed independently. Nothing is recorded while
//! no operation is open, which bounds trace memory. Because attribution is
//! per-thread, multi-threaded phases (the parallel recovery audit) must open
//! one checked operation *per worker thread* — stores issued by a thread
//! with no open operation are silently unattributed and escape analysis.
//!
//! # Detectors
//!
//! When a checked operation ends (guard drop), its event window is analyzed:
//!
//! 1. **MissingFlush** — an 8-byte word stored by the operation has no
//!    covering line flush after its last store: the data can be lost
//!    entirely at a crash even though the operation returned.
//! 2. **UnorderedPublish** — an operand word stored before a publish is
//!    first flushed *at or after* the flush that makes the publish durable.
//!    Words survive a crash independently even within one cache line, so
//!    flushing the commit record in the same `persist` call as (or earlier
//!    than) its operands means a crash can persist the commit while losing
//!    the data it guards.
//! 3. **TornPublish** — a publish store whose bytes straddle an 8-byte
//!    word boundary without being a whole-word sequence: some word of the
//!    commit record can be half-written at a crash. Word-aligned multiples
//!    of 8 bytes are allowed anywhere (even across cache lines — words
//!    survive independently): by the pool-wide convention a
//!    [`RawPPtr`](crate::RawPPtr) commits on its offset word and recovery
//!    tolerates a torn file-id word.
//! 4. **UnpublishedMultiWord** — a plain store crossing the 8-byte
//!    p-atomicity boundary with no commit record published after it: a
//!    crash can tear the write and nothing marks it incomplete.
//!
//! Two non-fatal warnings are counted as well (detector (c) of the issue):
//! **redundant flushes** of lines with no unflushed store, and flushes of
//! **never-written** lines — both wasted `CLFLUSH` traffic.
//!
//! If an operation unwinds (in particular when the crash fuse fires), its
//! window is discarded without analysis: a crashed operation is *supposed*
//! to leave unflushed stores behind, and recovery — itself run under the
//! checker — is what must be clean.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use crate::pool::{CACHE_LINE, PATOMIC_SIZE};

/// Cap on individually retained [`Violation`]s; the total count keeps
/// incrementing past it.
const MAX_KEPT_VIOLATIONS: usize = 64;

/// Classification of a durability-protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A stored word was never flushed before the operation ended.
    MissingFlush,
    /// A commit record was not fence/flush-separated from its operands.
    UnorderedPublish,
    /// A publish store that cannot be made durable p-atomically.
    TornPublish,
    /// A multi-word store with no commit record published after it.
    UnpublishedMultiWord,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::MissingFlush => "missing-flush",
            ViolationKind::UnorderedPublish => "unordered-publish",
            ViolationKind::TornPublish => "torn-publish",
            ViolationKind::UnpublishedMultiWord => "unpublished-multi-word",
        };
        f.write_str(s)
    }
}

/// One durability-protocol violation found by the checker.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Label of the checked operation the violation occurred in.
    pub op_label: &'static str,
    /// Pool offset of the offending word (or store start).
    pub offset: u64,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] op `{}` at {:#x}: {}",
            self.kind, self.op_label, self.offset, self.detail
        )
    }
}

/// Accumulated result of running the durability checker.
#[derive(Debug, Clone, Default)]
pub struct DurabilityReport {
    /// Checked operations analyzed (aborted/crashed operations excluded).
    pub ops_checked: u64,
    /// Trace events recorded (stores, publishes, flushes, fences).
    pub events_recorded: u64,
    /// Total violations found (may exceed `violations.len()`).
    pub total_violations: u64,
    /// Violations from the missing-flush detector.
    pub missing_flush: u64,
    /// Violations from the unordered-publish detector.
    pub unordered_publish: u64,
    /// Violations from the torn-publish detector.
    pub torn_publish: u64,
    /// Violations from the unpublished-multi-word detector.
    pub unpublished_multi_word: u64,
    /// Line flushes with no unflushed store to flush (wasted CLFLUSH).
    pub redundant_clean_flushes: u64,
    /// Line flushes of lines never stored to while the checker was enabled.
    pub unwritten_line_flushes: u64,
    /// Retained violations, capped at an internal limit.
    pub violations: Vec<Violation>,
}

impl DurabilityReport {
    /// True if no violation was found (warnings do not count).
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "durability checker: {} ops, {} events, {} violations \
             ({} redundant flushes, {} unwritten-line flushes)\n",
            self.ops_checked,
            self.events_recorded,
            self.total_violations,
            self.redundant_clean_flushes,
            self.unwritten_line_flushes
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        if self.total_violations > self.violations.len() as u64 {
            out.push_str(&format!(
                "  ... and {} more\n",
                self.total_violations - self.violations.len() as u64
            ));
        }
        out
    }
}

/// Trace event kind (internal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Store,
    Publish,
    Flush,
    Fence,
}

/// One trace event. Its epoch is implicit: `CheckerState::base` plus its
/// index in the event vector.
#[derive(Debug, Clone, Copy)]
struct Event {
    kind: Kind,
    /// Owning operation for stores/publishes; 0 for flushes/fences.
    op: u64,
    off: u64,
    len: u32,
}

/// A checked operation still in progress.
struct OpenOp {
    id: u64,
    label: &'static str,
    /// Absolute epoch of the first event in this operation's window.
    begin: u64,
}

/// Internal checker state; one per pool, behind its own mutex.
#[derive(Default)]
pub(crate) struct CheckerState {
    events: Vec<Event>,
    /// Absolute epoch of `events[0]` (events before it have been drained).
    base: u64,
    open: Vec<OpenOp>,
    next_op: u64,
    /// Lines with at least one store not yet covered by a flush.
    line_dirty: HashSet<u64>,
    /// Lines ever stored to while the checker was enabled.
    line_written: HashSet<u64>,
    report: DurabilityReport,
}

// Per-thread stack of open checked operations: (pool identity, op id).
// Innermost entry for a given pool wins, so nested operations (a tree op
// that allocates) attribute their stores to the inner window.
thread_local! {
    static OP_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Innermost open operation for `pool` on this thread.
pub(crate) fn current_op(pool: usize) -> Option<u64> {
    OP_STACK.with(|s| {
        s.borrow()
            .iter()
            .rev()
            .find(|(p, _)| *p == pool)
            .map(|&(_, id)| id)
    })
}

/// Pushes an operation onto this thread's stack.
pub(crate) fn push_op(pool: usize, id: u64) {
    OP_STACK.with(|s| s.borrow_mut().push((pool, id)));
}

/// Removes `(pool, id)` from this thread's stack (search from the top:
/// guards drop in reverse open order, but a stray out-of-order drop must
/// still only remove its own entry).
pub(crate) fn pop_op(pool: usize, id: u64) {
    OP_STACK.with(|s| {
        let mut st = s.borrow_mut();
        if let Some(i) = st.iter().rposition(|&(p, o)| p == pool && o == id) {
            st.remove(i);
        }
    });
}

/// Cache line containing byte offset `off`.
#[inline]
fn line_of(off: u64) -> u64 {
    off & !(CACHE_LINE as u64 - 1)
}

/// Iterator over the cache lines covering `[off, off + len)`.
fn lines(off: u64, len: usize) -> impl Iterator<Item = u64> {
    let first = line_of(off);
    let last = line_of(off + len.max(1) as u64 - 1);
    (first..=last).step_by(CACHE_LINE)
}

/// Iterator over the 8-byte words covering `[off, off + len)`.
fn words(off: u64, len: usize) -> impl Iterator<Item = u64> {
    let w = PATOMIC_SIZE as u64;
    let first = off / w * w;
    let last = (off + len.max(1) as u64 - 1) / w * w;
    (first..=last).step_by(PATOMIC_SIZE)
}

impl CheckerState {
    /// Opens a new checked operation and returns its id.
    pub(crate) fn begin_op(&mut self, label: &'static str) -> u64 {
        self.next_op += 1;
        let id = self.next_op;
        self.open.push(OpenOp {
            id,
            label,
            begin: self.base + self.events.len() as u64,
        });
        id
    }

    /// Records a store (or publish). Returns true if a trace event was
    /// appended (i.e. an operation was open on the calling thread).
    pub(crate) fn record_store(
        &mut self,
        off: u64,
        len: usize,
        publish: bool,
        op: Option<u64>,
    ) -> bool {
        for line in lines(off, len) {
            self.line_dirty.insert(line);
            self.line_written.insert(line);
        }
        let Some(op) = op else { return false };
        let kind = if publish { Kind::Publish } else { Kind::Store };
        self.events.push(Event {
            kind,
            op,
            off,
            len: len as u32,
        });
        self.report.events_recorded += 1;
        true
    }

    /// Records a `persist` call. Returns `(redundant, unwritten, recorded)`:
    /// how many covered lines were clean / never written, and whether a
    /// trace event was appended.
    pub(crate) fn record_flush(&mut self, off: u64, len: usize) -> (u64, u64, bool) {
        let mut redundant = 0;
        let mut unwritten = 0;
        for line in lines(off, len) {
            if self.line_dirty.remove(&line) {
                continue;
            }
            if self.line_written.contains(&line) {
                redundant += 1;
            } else {
                unwritten += 1;
            }
        }
        self.report.redundant_clean_flushes += redundant;
        self.report.unwritten_line_flushes += unwritten;
        let recorded = if self.open.is_empty() {
            false
        } else {
            self.events.push(Event {
                kind: Kind::Flush,
                op: 0,
                off,
                len: len as u32,
            });
            self.report.events_recorded += 1;
            true
        };
        (redundant, unwritten, recorded)
    }

    /// Records a `fence` call. Returns true if a trace event was appended.
    pub(crate) fn record_fence(&mut self) -> bool {
        if self.open.is_empty() {
            return false;
        }
        self.events.push(Event {
            kind: Kind::Fence,
            op: 0,
            off: 0,
            len: 0,
        });
        self.report.events_recorded += 1;
        true
    }

    /// Closes operation `id`. Analyzes its window unless `aborted` (the
    /// operation unwound, e.g. an injected crash). Returns the number of
    /// violations found.
    pub(crate) fn end_op(&mut self, id: u64, aborted: bool) -> u64 {
        let Some(idx) = self.open.iter().position(|o| o.id == id) else {
            return 0;
        };
        let op = self.open.remove(idx);
        let mut found = 0;
        if !aborted {
            found = self.analyze(&op);
            self.report.ops_checked += 1;
            self.report.total_violations += found;
        }
        self.drain();
        found
    }

    /// Drops trace events no open operation can still see.
    fn drain(&mut self) {
        let keep_from = self
            .open
            .iter()
            .map(|o| o.begin)
            .min()
            .unwrap_or(self.base + self.events.len() as u64);
        let cut = (keep_from - self.base) as usize;
        if cut > 0 {
            self.events.drain(..cut);
            self.base = keep_from;
        }
    }

    /// Runs every detector over one finished operation's event window.
    fn analyze(&mut self, op: &OpenOp) -> u64 {
        let start = (op.begin - self.base) as usize;
        let window = &self.events[start..];

        // Flushes are global; stores/publishes belong to this operation.
        // `i` below is the event's window-relative epoch.
        let mut flushes: Vec<(usize, u64, u64)> = Vec::new(); // (i, first_line, last_line)
        let mut own: Vec<(usize, u64, usize, bool)> = Vec::new(); // (i, off, len, publish)
        for (i, ev) in window.iter().enumerate() {
            match ev.kind {
                Kind::Flush => {
                    let first = line_of(ev.off);
                    let last = line_of(ev.off + (ev.len as u64).max(1) - 1);
                    flushes.push((i, first, last));
                }
                Kind::Store | Kind::Publish if ev.op == op.id => {
                    own.push((i, ev.off, ev.len as usize, ev.kind == Kind::Publish));
                }
                _ => {}
            }
        }
        if own.is_empty() {
            return 0;
        }

        // First flush after event `i` whose line range covers `word`.
        let first_flush_after = |i: usize, word: u64| -> Option<usize> {
            let line = line_of(word);
            flushes
                .iter()
                .find(|&&(fi, lo, hi)| fi > i && lo <= line && line <= hi)
                .map(|f| f.0)
        };

        let mut found: Vec<Violation> = Vec::new();

        // (1) MissingFlush: the last store to each word must be flushed.
        let mut last_store: HashMap<u64, usize> = HashMap::new();
        for &(i, off, len, _) in &own {
            for word in words(off, len) {
                last_store.insert(word, i);
            }
        }
        let mut missing: Vec<(u64, usize)> = last_store.iter().map(|(&w, &i)| (w, i)).collect();
        missing.sort_unstable();
        for (word, i) in missing {
            if first_flush_after(i, word).is_none() {
                found.push(Violation {
                    kind: ViolationKind::MissingFlush,
                    op_label: op.label,
                    offset: word,
                    detail: "word stored but never flushed before the operation ended".to_string(),
                });
            }
        }

        // (2) UnorderedPublish + (3) TornPublish.
        for &(pi, poff, plen, publish) in &own {
            if !publish {
                continue;
            }
            let w = PATOMIC_SIZE as u64;
            let torn = if plen as u64 <= w {
                // A short publish must sit inside a single p-atomic word.
                poff % w + plen as u64 > w
            } else {
                // A long publish must be a word-aligned run of whole words
                // (per-word commit convention; line crossings are fine).
                poff % w != 0 || plen % PATOMIC_SIZE != 0
            };
            if torn {
                found.push(Violation {
                    kind: ViolationKind::TornPublish,
                    op_label: op.label,
                    offset: poff,
                    detail: format!(
                        "publish of {plen} bytes straddles an 8-byte word boundary \
                         and cannot be made durable p-atomically"
                    ),
                });
                continue;
            }
            let Some(pf) = first_flush_after(pi, poff) else {
                continue; // never flushed: already reported by MissingFlush
            };
            let pwords: HashSet<u64> = words(poff, plen).collect();
            // Last store before the publish, per operand word.
            let mut operands: HashMap<u64, usize> = HashMap::new();
            for &(i, off, len, _) in own.iter().filter(|&&(i, ..)| i < pi) {
                for word in words(off, len) {
                    if !pwords.contains(&word) {
                        operands.insert(word, i);
                    }
                }
            }
            let mut operands: Vec<(u64, usize)> = operands.into_iter().collect();
            operands.sort_unstable();
            for (word, si) in operands {
                match first_flush_after(si, word) {
                    None => {} // reported by MissingFlush
                    Some(f) if f >= pf => found.push(Violation {
                        kind: ViolationKind::UnorderedPublish,
                        op_label: op.label,
                        offset: word,
                        detail: format!(
                            "operand first flushed {} the commit record at {poff:#x}; \
                             a crash can persist the commit but lose the operand",
                            if f == pf {
                                "by the same persist call as"
                            } else {
                                "after"
                            }
                        ),
                    }),
                    _ => {}
                }
            }
        }

        // (4) UnpublishedMultiWord: a torn-able plain store needs a commit
        // record published after it. One report per operation is enough.
        let has_publish_after = |i: usize| own.iter().any(|&(j, _, _, publish)| publish && j > i);
        for &(i, off, len, publish) in &own {
            if !publish
                && (off % PATOMIC_SIZE as u64 + len as u64) > PATOMIC_SIZE as u64
                && !has_publish_after(i)
            {
                found.push(Violation {
                    kind: ViolationKind::UnpublishedMultiWord,
                    op_label: op.label,
                    offset: off,
                    detail: format!(
                        "store of {len} bytes crosses the 8-byte p-atomicity boundary \
                         and no commit record is published after it"
                    ),
                });
                break;
            }
        }

        let n = found.len() as u64;
        for v in found {
            match v.kind {
                ViolationKind::MissingFlush => self.report.missing_flush += 1,
                ViolationKind::UnorderedPublish => self.report.unordered_publish += 1,
                ViolationKind::TornPublish => self.report.torn_publish += 1,
                ViolationKind::UnpublishedMultiWord => self.report.unpublished_multi_word += 1,
            }
            if self.report.violations.len() < MAX_KEPT_VIOLATIONS {
                self.report.violations.push(v);
            }
        }
        n
    }

    /// Per-detector violation totals so far, in declaration order
    /// (missing-flush, unordered-publish, torn-publish,
    /// unpublished-multi-word). Used to compute per-operation deltas.
    pub(crate) fn kind_counts(&self) -> [u64; 4] {
        [
            self.report.missing_flush,
            self.report.unordered_publish,
            self.report.torn_publish,
            self.report.unpublished_multi_word,
        ]
    }

    /// Snapshot of the accumulated report.
    pub(crate) fn report(&self) -> DurabilityReport {
        self.report.clone()
    }

    /// Takes the accumulated report, resetting violation and warning
    /// accumulators (line tracking and open operations are kept).
    pub(crate) fn take_report(&mut self) -> DurabilityReport {
        std::mem::take(&mut self.report)
    }
}

/// RAII guard for a checked operation; see [`PmemPool::begin_checked_op`](crate::PmemPool::begin_checked_op).
///
/// Ends — and analyzes — the operation on drop. If the thread is unwinding
/// (an injected crash or any other panic), the window is discarded without
/// analysis: interrupted operations legitimately leave unflushed state, and
/// the *recovery* path is what the checker must then prove clean.
///
/// [`PmemPool::begin_checked_op`](crate::PmemPool::begin_checked_op): crate::PmemPool::begin_checked_op
#[must_use = "the checked operation ends when this guard drops"]
pub struct CheckedOp<'a> {
    pool: &'a crate::PmemPool,
    op: Option<u64>,
}

impl<'a> CheckedOp<'a> {
    /// Builds a guard; `op` is None when the checker is disabled.
    pub(crate) fn new(pool: &'a crate::PmemPool, op: Option<u64>) -> Self {
        CheckedOp { pool, op }
    }
}

impl Drop for CheckedOp<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.op.take() {
            self.pool.finish_checked_op(id, std::thread::panicking());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_and_lines_cover_ranges() {
        assert_eq!(words(0, 8).collect::<Vec<_>>(), vec![0]);
        assert_eq!(words(4, 8).collect::<Vec<_>>(), vec![0, 8]);
        assert_eq!(words(8, 16).collect::<Vec<_>>(), vec![8, 16]);
        assert_eq!(lines(0, 64).collect::<Vec<_>>(), vec![0]);
        assert_eq!(lines(60, 8).collect::<Vec<_>>(), vec![0, 64]);
        assert_eq!(lines(64, 1).collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    fn clean_protocol_passes() {
        // store data; flush; publish; flush — the canonical pattern.
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4096, 16, false, Some(id));
        st.record_flush(4096, 16);
        st.record_store(4160, 8, true, Some(id));
        st.record_flush(4160, 8);
        assert_eq!(st.end_op(id, false), 0);
        assert!(st.report().is_clean());
        assert_eq!(st.report().ops_checked, 1);
    }

    #[test]
    fn missing_flush_detected() {
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4096, 8, false, Some(id));
        assert_eq!(st.end_op(id, false), 1);
        let r = st.report();
        assert_eq!(r.violations[0].kind, ViolationKind::MissingFlush);
        assert_eq!(r.violations[0].offset, 4096);
    }

    #[test]
    fn publish_in_same_persist_as_operand_detected() {
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4096, 8, false, Some(id)); // operand
        st.record_store(4104, 8, true, Some(id)); // commit record, same line
        st.record_flush(4096, 16); // one persist covers both: unordered
        assert_eq!(st.end_op(id, false), 1);
        assert_eq!(
            st.report().violations[0].kind,
            ViolationKind::UnorderedPublish
        );
    }

    #[test]
    fn publish_after_operand_flush_is_clean() {
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4096, 8, false, Some(id));
        st.record_flush(4096, 8);
        st.record_store(4104, 8, true, Some(id));
        st.record_flush(4104, 8);
        assert_eq!(st.end_op(id, false), 0);
    }

    #[test]
    fn torn_publish_detected() {
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4100, 8, true, Some(id)); // unaligned publish
        st.record_flush(4100, 8);
        assert_eq!(st.end_op(id, false), 1);
        assert_eq!(st.report().violations[0].kind, ViolationKind::TornPublish);
    }

    #[test]
    fn multiword_store_without_commit_detected() {
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4096, 32, false, Some(id));
        st.record_flush(4096, 32);
        assert_eq!(st.end_op(id, false), 1);
        assert_eq!(
            st.report().violations[0].kind,
            ViolationKind::UnpublishedMultiWord
        );
    }

    #[test]
    fn multiword_store_with_later_publish_is_clean() {
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4096, 32, false, Some(id));
        st.record_flush(4096, 32);
        st.record_store(4160, 8, true, Some(id));
        st.record_flush(4160, 8);
        assert_eq!(st.end_op(id, false), 0);
    }

    #[test]
    fn buffer_entry_commit_is_one_clean_publish() {
        // The leaf append-buffer commit: the whole (tag, key, value) entry
        // is one word-aligned multi-word publish with no prior operand
        // stores, so a single persist closes the op cleanly. Recovery
        // tolerates per-word tearing via the checksum in the tag word.
        let mut st = CheckerState::default();
        let id = st.begin_op("wbuf_append");
        st.record_store(4096, 24, true, Some(id));
        st.record_flush(4096, 24);
        assert_eq!(st.end_op(id, false), 0);
        assert!(st.report().is_clean());
    }

    #[test]
    fn buffer_entry_commit_misaligned_is_torn() {
        // Same shape but off word alignment: every word could tear
        // independently across field boundaries, which the tag checksum
        // does not cover.
        let mut st = CheckerState::default();
        let id = st.begin_op("wbuf_append");
        st.record_store(4100, 24, true, Some(id));
        st.record_flush(4100, 24);
        assert_eq!(st.end_op(id, false), 1);
        assert_eq!(st.report().violations[0].kind, ViolationKind::TornPublish);
    }

    #[test]
    fn buffer_entry_commit_unflushed_is_missing_flush() {
        // MissingFlush is reported per stored word, so the whole 3-word
        // entry surfaces as three violations.
        let mut st = CheckerState::default();
        let id = st.begin_op("wbuf_append");
        st.record_store(4096, 24, true, Some(id));
        assert_eq!(st.end_op(id, false), 3);
        let report = st.report();
        assert_eq!(report.violations.len(), 3);
        assert!(report
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::MissingFlush));
    }

    #[test]
    fn aborted_op_is_not_analyzed() {
        let mut st = CheckerState::default();
        let id = st.begin_op("test");
        st.record_store(4096, 8, false, Some(id)); // never flushed
        assert_eq!(st.end_op(id, true), 0);
        assert!(st.report().is_clean());
        assert_eq!(st.report().ops_checked, 0);
        assert!(st.events.is_empty(), "window must be drained");
    }

    #[test]
    fn nested_ops_attribute_independently() {
        let mut st = CheckerState::default();
        let outer = st.begin_op("outer");
        st.record_store(4096, 8, false, Some(outer));
        let inner = st.begin_op("inner");
        st.record_store(8192, 8, false, Some(inner)); // never flushed
        assert_eq!(st.end_op(inner, false), 1, "inner op missing flush");
        st.record_flush(4096, 8);
        assert_eq!(st.end_op(outer, false), 0, "outer op is clean");
    }

    #[test]
    fn flush_accounting_counts_redundant_and_unwritten() {
        let mut st = CheckerState::default();
        st.record_store(4096, 8, false, None);
        let (r, u, _) = st.record_flush(4096, 8);
        assert_eq!((r, u), (0, 0));
        let (r, u, _) = st.record_flush(4096, 8); // clean line
        assert_eq!((r, u), (1, 0));
        let (r, u, _) = st.record_flush(8192, 8); // never written
        assert_eq!((r, u), (0, 1));
        let rep = st.report();
        assert_eq!(rep.redundant_clean_flushes, 1);
        assert_eq!(rep.unwritten_line_flushes, 1);
    }

    #[test]
    fn drain_keeps_open_windows() {
        let mut st = CheckerState::default();
        let outer = st.begin_op("outer");
        st.record_store(4096, 8, false, Some(outer));
        let inner = st.begin_op("inner");
        st.record_store(8192, 8, false, Some(inner));
        st.record_flush(8192, 8);
        st.end_op(inner, false);
        // Outer still open: its events must survive the drain.
        assert!(!st.events.is_empty());
        st.record_flush(4096, 8);
        assert_eq!(st.end_op(outer, false), 0);
        assert!(st.events.is_empty());
    }

    #[test]
    fn tls_stack_tracks_innermost_per_pool() {
        push_op(1, 10);
        push_op(2, 20);
        push_op(1, 11);
        assert_eq!(current_op(1), Some(11));
        assert_eq!(current_op(2), Some(20));
        pop_op(1, 11);
        assert_eq!(current_op(1), Some(10));
        pop_op(1, 10);
        pop_op(2, 20);
        assert_eq!(current_op(1), None);
    }

    #[test]
    fn report_renders_summary() {
        let mut st = CheckerState::default();
        let id = st.begin_op("demo");
        st.record_store(4096, 8, false, Some(id));
        st.end_op(id, false);
        let text = st.report().render();
        assert!(text.contains("missing-flush"));
        assert!(text.contains("demo"));
    }
}
