//! Persistent pointers.
//!
//! A restart gives the process a fresh address space, so virtual pointers
//! stored in SCM are meaningless after recovery. The paper (§2 "Data
//! recovery") uses 16-byte persistent pointers made of an 8-byte file id and
//! an 8-byte offset into that file; the persistent allocator converts between
//! persistent and volatile pointers. We reproduce that layout exactly.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// Offset value representing a null persistent pointer.
///
/// Offset 0 always falls inside the pool header, which is never handed out by
/// the allocator, so 0 is unambiguous as "null" — and, crucially, a null
/// pointer is all-zero bytes, so freshly zeroed persistent memory reads back
/// as null pointers.
pub const NULL_OFFSET: u64 = 0;

/// An untyped persistent pointer: 8-byte file id + 8-byte offset.
///
/// `repr(C)` and all-`u64` so it is plain old data that can be stored in and
/// read back from persistent memory byte-for-byte.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct RawPPtr {
    /// Identifies the pool ("file") this pointer refers to.
    pub file_id: u64,
    /// Byte offset within the pool.
    pub offset: u64,
}

impl RawPPtr {
    /// The null persistent pointer.
    pub const NULL: RawPPtr = RawPPtr {
        file_id: 0,
        offset: NULL_OFFSET,
    };

    /// Creates a pointer into pool `file_id` at byte `offset`.
    #[inline]
    pub const fn new(file_id: u64, offset: u64) -> Self {
        RawPPtr { file_id, offset }
    }

    /// Whether this is the null pointer.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.offset == NULL_OFFSET
    }

    /// Reinterprets as a typed pointer.
    #[inline]
    pub const fn typed<T>(self) -> PPtr<T> {
        PPtr {
            raw: self,
            _marker: PhantomData,
        }
    }
}

impl fmt::Debug for RawPPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PPtr(null)")
        } else {
            write!(f, "PPtr(file={}, off={:#x})", self.file_id, self.offset)
        }
    }
}

/// A typed persistent pointer to a `T` stored in a pool.
///
/// The type parameter is a compile-time convenience only; the persistent
/// representation is identical to [`RawPPtr`].
#[repr(C)]
pub struct PPtr<T> {
    raw: RawPPtr,
    _marker: PhantomData<T>,
}

impl<T> PPtr<T> {
    /// The null typed pointer.
    pub const NULL: PPtr<T> = PPtr {
        raw: RawPPtr::NULL,
        _marker: PhantomData,
    };

    /// Creates a typed pointer into pool `file_id` at byte `offset`.
    #[inline]
    pub const fn new(file_id: u64, offset: u64) -> Self {
        PPtr {
            raw: RawPPtr::new(file_id, offset),
            _marker: PhantomData,
        }
    }

    /// Whether this is the null pointer.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.raw.is_null()
    }

    /// The untyped form.
    #[inline]
    pub const fn raw(self) -> RawPPtr {
        self.raw
    }

    /// Byte offset within the pool.
    #[inline]
    pub const fn offset(self) -> u64 {
        self.raw.offset
    }

    /// Pool ("file") id.
    #[inline]
    pub const fn file_id(self) -> u64 {
        self.raw.file_id
    }

    /// Pointer `count` elements of `T` further.
    #[inline]
    pub const fn add(self, count: u64) -> Self {
        PPtr::new(
            self.raw.file_id,
            self.raw.offset + count * std::mem::size_of::<T>() as u64,
        )
    }

    /// Pointer `bytes` bytes further, reinterpreted as a `U`.
    #[inline]
    pub const fn byte_add<U>(self, bytes: u64) -> PPtr<U> {
        PPtr::new(self.raw.file_id, self.raw.offset + bytes)
    }
}

// Manual impls: derive would bound them on `T`.
impl<T> Clone for PPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PPtr<T> {}
impl<T> PartialEq for PPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for PPtr<T> {}
impl<T> Hash for PPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state)
    }
}
impl<T> fmt::Debug for PPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.raw)
    }
}
impl<T> Default for PPtr<T> {
    fn default() -> Self {
        Self::NULL
    }
}

/// Marker for plain-old-data types that may be stored in persistent memory.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding-dependent invariants violated
/// by byte-wise copies, and tolerate arbitrary bit patterns being read back
/// (recovery code must validate semantic invariants itself).
pub unsafe trait Pod: Copy {}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        // SAFETY: primitive integers are Copy, padding-free, and every bit
        // pattern is a valid value.
        $(unsafe impl Pod for $t {})*
    };
}
impl_pod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
// SAFETY: repr(C), two u64 fields, no padding; any bit pattern is a valid
// (if semantically unchecked) pointer value.
unsafe impl Pod for RawPPtr {}
// SAFETY: same layout as RawPPtr (PhantomData is zero-sized); the type
// parameter never appears in the representation.
unsafe impl<T: 'static> Pod for PPtr<T> {}
// SAFETY: an array of Pod elements is itself padding-free and bit-valid.
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pptr_is_sixteen_bytes() {
        assert_eq!(std::mem::size_of::<RawPPtr>(), 16);
        assert_eq!(std::mem::size_of::<PPtr<u64>>(), 16);
    }

    #[test]
    fn null_roundtrip() {
        let p: PPtr<u64> = PPtr::NULL;
        assert!(p.is_null());
        assert!(p.raw().is_null());
        assert_eq!(p, PPtr::default());
    }

    #[test]
    fn zeroed_bytes_are_null() {
        let bytes = [0u8; 16];
        // SAFETY: RawPPtr is Pod, and `bytes` is 16 readable bytes.
        let p: RawPPtr = unsafe { std::ptr::read(bytes.as_ptr() as *const RawPPtr) };
        assert!(p.is_null());
    }

    #[test]
    fn add_advances_by_element_size() {
        let p: PPtr<u64> = PPtr::new(1, 4096);
        assert_eq!(p.add(3).offset(), 4096 + 24);
        let q: PPtr<u8> = p.byte_add(5);
        assert_eq!(q.offset(), 4101);
    }

    #[test]
    fn typed_untyped_roundtrip() {
        let raw = RawPPtr::new(7, 123);
        let typed: PPtr<u32> = raw.typed();
        assert_eq!(typed.raw(), raw);
        assert_eq!(typed.offset(), 123);
        assert_eq!(typed.file_id(), 7);
    }
}
