//! Crash-safe persistent memory allocator.
//!
//! The paper (§2 "Memory leaks") observes that in SCM a memory leak is
//! *persistent*: if a crash separates the allocator's notion of "allocated"
//! from the data structure's, the block is lost forever. Its fix, reproduced
//! here, changes the allocator *interface*: allocation takes a reference to
//! a persistent pointer that belongs to the calling persistent data
//! structure, and the allocator persistently writes the block address into
//! it before returning; deallocation persistently nulls it. Combined with a
//! redo micro-log inside the allocator, every crash leaves the pair
//! (allocator state, owner pointer) reconcilable: recovery completes or
//! rolls back the in-flight operation.
//!
//! Design: segregated free lists over power-of-two size classes, backed by a
//! bump region. Every block has a 64-byte header (class, user size, free-list
//! link), so user data is always cache-line aligned — the FPTree leaf layout
//! depends on fingerprints occupying the first cache line — and the whole
//! heap can be *walked* (header to header) for the leak audits used in
//! recovery tests.

use crate::pool::{PmemPool, USER_BASE};
use crate::pptr::RawPPtr;
use crate::stats::PoolStats;

/// Size of the per-block header. A full cache line so that user data is
/// always 64-byte aligned.
pub const BLOCK_HEADER_SIZE: u64 = 64;

/// Smallest size class (bytes).
const MIN_CLASS_SHIFT: u32 = 6; // 64 B
/// Largest size class (bytes).
const MAX_CLASS_SHIFT: u32 = 25; // 32 MiB
const NCLASS: usize = (MAX_CLASS_SHIFT - MIN_CLASS_SHIFT + 1) as usize;

/// Magic tag in the high 32 bits of a block header's first word.
const BLOCK_MAGIC: u64 = 0xB10C_0000_0000_0000;
const BLOCK_MAGIC_MASK: u64 = 0xFFFF_0000_0000_0000;

// Allocator metadata layout inside the pool header (all 8-byte aligned).
const OFF_BUMP: u64 = 64;
/// Redo log: op, dest, block, size — 32 bytes in one cache line.
///
/// The `op` word is the *commit record*: operand words are persisted first,
/// `op` second, so a crash can never leave a durable `op` with non-durable
/// operands (our crash model lets 8-byte words within one line survive
/// independently, so intra-line write order cannot be relied on).
const OFF_LOG: u64 = 128;
const LOG_OP: u64 = OFF_LOG;
const LOG_DEST: u64 = OFF_LOG + 8;
/// Block base offset; bit 0 doubles as the source flag (0 = free list,
/// 1 = bump) so that recording the block is a single p-atomic write.
const LOG_BLOCK: u64 = OFF_LOG + 16;
const LOG_SIZE: u64 = OFF_LOG + 24;
const OFF_FREE_HEADS: u64 = 192;

const OP_NONE: u64 = 0;
const OP_ALLOC: u64 = 1;
const OP_FREE: u64 = 2;

const SRC_BUMP_FLAG: u64 = 1;

/// Block header field offsets relative to the block base.
const HDR_TAG: u64 = 0; // magic | class index
const HDR_USER_SIZE: u64 = 8;
const HDR_NEXT: u64 = 16; // free-list link (block base offset of next free)

/// Errors from pool construction and allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Pool size below the minimum (header + one block).
    PoolTooSmall,
    /// Reopened image fails validation (bad magic / not initialized).
    BadImage,
    /// No space left in the pool.
    OutOfMemory,
    /// Request exceeds the largest size class.
    TooLarge,
    /// Heap walk found an inconsistency (test/audit API).
    Corrupt(&'static str),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::PoolTooSmall => write!(f, "pool size below minimum"),
            AllocError::BadImage => write!(f, "image failed validation"),
            AllocError::OutOfMemory => write!(f, "persistent pool exhausted"),
            AllocError::TooLarge => write!(f, "allocation exceeds largest size class"),
            AllocError::Corrupt(why) => write!(f, "heap corruption detected: {why}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Aggregate allocator statistics derived from a heap walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Blocks currently allocated (not on any free list).
    pub live_blocks: usize,
    /// Blocks on free lists.
    pub free_blocks: usize,
    /// Sum of user sizes of live blocks.
    pub live_bytes: u64,
    /// Bump cursor: total bytes of the pool ever used.
    pub bump: u64,
}

fn class_for(size: usize) -> Result<usize, AllocError> {
    if size == 0 || size > (1usize << MAX_CLASS_SHIFT) {
        return Err(AllocError::TooLarge);
    }
    let shift = usize::BITS - (size - 1).leading_zeros();
    Ok(shift.max(MIN_CLASS_SHIFT) as usize - MIN_CLASS_SHIFT as usize)
}

fn class_size(class: usize) -> u64 {
    1u64 << (class as u32 + MIN_CLASS_SHIFT)
}

/// Internal handle over the allocator's persistent metadata.
pub(crate) struct AllocHeader;

impl AllocHeader {
    /// Writes fresh allocator metadata into a new pool.
    pub(crate) fn init(pool: &PmemPool) {
        pool.write_word(OFF_BUMP, USER_BASE);
        for w in 0..4 {
            pool.write_word(OFF_LOG + w * 8, 0);
        }
        for c in 0..NCLASS {
            pool.write_word(OFF_FREE_HEADS + c as u64 * 8, 0);
        }
        pool.persist(OFF_BUMP, 8);
        pool.persist(OFF_LOG, 32);
        pool.persist(OFF_FREE_HEADS, NCLASS * 8);
    }

    /// Completes or rolls back an in-flight alloc/free after a crash.
    ///
    /// Every step of the protocols below is idempotent given the redo log,
    /// so recovery can itself crash and be re-run. Every logged word comes
    /// from a potentially corrupt image, so each is validated before use and
    /// damage surfaces as [`AllocError::Corrupt`] instead of a panic.
    pub(crate) fn recover(pool: &PmemPool) -> Result<(), AllocError> {
        let op = pool.read_word(LOG_OP);
        match op {
            OP_NONE => {}
            OP_ALLOC => {
                let block_word = pool.read_word(LOG_BLOCK);
                if block_word == 0 {
                    // Crashed before a block was chosen: roll back.
                    reset_log(pool);
                    return Ok(());
                }
                let from_bump = block_word & SRC_BUMP_FLAG != 0;
                let block = block_word & !SRC_BUMP_FLAG;
                let dest = pool.read_word(LOG_DEST);
                let size = pool.read_word(LOG_SIZE);
                let class = class_for(size as usize)
                    .map_err(|_| AllocError::Corrupt("alloc log records an invalid size"))?;
                if block < USER_BASE
                    || !pool.in_bounds(block, (BLOCK_HEADER_SIZE + class_size(class)) as usize)
                {
                    return Err(AllocError::Corrupt("alloc log block outside the heap"));
                }
                if !dest.is_multiple_of(8) || !pool.in_bounds(dest, 16) {
                    return Err(AllocError::Corrupt("alloc log owner slot outside the pool"));
                }
                if from_bump {
                    // Redo the bump advance if it has not happened.
                    let end = block + BLOCK_HEADER_SIZE + class_size(class);
                    if pool.read_word(OFF_BUMP) < end {
                        pool.write_word(OFF_BUMP, end);
                        pool.persist(OFF_BUMP, 8);
                    }
                } else {
                    // Redo the unlink if the head still points at us.
                    let head_off = OFF_FREE_HEADS + class as u64 * 8;
                    if pool.read_word(head_off) == block {
                        let next = pool.read_word(block + HDR_NEXT);
                        pool.write_word(head_off, next);
                        pool.persist(head_off, 8);
                    }
                }
                write_block_header(pool, block, class, size);
                write_dest(pool, dest, block + BLOCK_HEADER_SIZE);
                reset_log(pool);
            }
            OP_FREE => {
                let block = pool.read_word(LOG_BLOCK);
                let dest = pool.read_word(LOG_DEST);
                if block < USER_BASE || !pool.in_bounds(block, BLOCK_HEADER_SIZE as usize) {
                    return Err(AllocError::Corrupt("free log block outside the heap"));
                }
                if !dest.is_multiple_of(8) || !pool.in_bounds(dest, 16) {
                    return Err(AllocError::Corrupt("free log owner slot outside the pool"));
                }
                let tag = pool.read_word(block + HDR_TAG);
                if tag & BLOCK_MAGIC_MASK != BLOCK_MAGIC {
                    return Err(AllocError::Corrupt("freed block header corrupt"));
                }
                let class = (tag & !BLOCK_MAGIC_MASK) as usize;
                if class >= NCLASS {
                    return Err(AllocError::Corrupt("freed block has an invalid size class"));
                }
                let head_off = OFF_FREE_HEADS + class as u64 * 8;
                if pool.read_word(head_off) != block {
                    // Redo the push (setting next twice is idempotent: no
                    // other operation ran between log write and crash).
                    pool.write_word(block + HDR_NEXT, pool.read_word(head_off));
                    pool.persist(block + HDR_NEXT, 8);
                    pool.write_word(head_off, block);
                    pool.persist(head_off, 8);
                }
                write_dest(pool, dest, 0);
                reset_log(pool);
            }
            _ => return Err(AllocError::Corrupt("unknown allocator log op")),
        }
        Ok(())
    }
}

fn reset_log(pool: &PmemPool) {
    // Only the commit word needs clearing: operand words are never trusted
    // unless `op` is durable and non-NONE.
    pool.write_publish_word(LOG_OP, OP_NONE);
    pool.persist(LOG_OP, 8);
}

/// Persists the log operands, then commits by persisting the op word.
fn commit_log(pool: &PmemPool, op: u64) {
    pool.persist(OFF_LOG, 32);
    pool.write_publish_word(LOG_OP, op);
    pool.persist(LOG_OP, 8);
}

fn write_block_header(pool: &PmemPool, block: u64, class: usize, user_size: u64) {
    pool.write_word(block + HDR_TAG, BLOCK_MAGIC | class as u64);
    pool.write_word(block + HDR_USER_SIZE, user_size);
    pool.persist(block + HDR_TAG, 16);
}

/// Persistently writes the owner's persistent pointer (`user_off == 0`
/// writes null). The 16-byte pointer spans two p-atomic words; recovery
/// tolerates any prefix because it redoes this write idempotently.
fn write_dest(pool: &PmemPool, dest: u64, user_off: u64) {
    let pptr = if user_off == 0 {
        RawPPtr::NULL
    } else {
        RawPPtr::new(pool.file_id(), user_off)
    };
    pool.write_publish_at(dest, &pptr);
    pool.persist(dest, 16);
}

impl PmemPool {
    /// Allocates `size` bytes of persistent memory, persistently publishing
    /// the result into the owner's persistent pointer at offset `dest_off`
    /// before returning (the paper's leak-preventing interface).
    ///
    /// Returns the user-data offset (always 64-byte aligned).
    pub fn allocate(&self, dest_off: u64, size: usize) -> Result<u64, AllocError> {
        let class = class_for(size)?;
        let _guard = self.alloc_lock.lock();
        let _op = self.begin_checked_op("alloc");

        // Phase 1: intent — operands first, then the op commit word.
        self.write_word(LOG_DEST, dest_off);
        self.write_word(LOG_SIZE, size as u64);
        self.write_word(LOG_BLOCK, 0);
        commit_log(self, OP_ALLOC);

        // Phase 2: record the chosen block (one p-atomic write, source flag
        // in bit 0), then detach it from the free list / bump region.
        let head_off = OFF_FREE_HEADS + class as u64 * 8;
        let head = self.read_word(head_off);
        let block = if head != 0 {
            self.write_word(LOG_BLOCK, head);
            self.persist(LOG_BLOCK, 8);
            let next = self.read_word(head + HDR_NEXT);
            self.write_word(head_off, next);
            self.persist(head_off, 8);
            head
        } else {
            let bump = self.read_word(OFF_BUMP);
            let end = bump + BLOCK_HEADER_SIZE + class_size(class);
            if end > self.capacity() as u64 {
                reset_log(self);
                return Err(AllocError::OutOfMemory);
            }
            self.write_word(LOG_BLOCK, bump | SRC_BUMP_FLAG);
            self.persist(LOG_BLOCK, 8);
            self.write_word(OFF_BUMP, end);
            self.persist(OFF_BUMP, 8);
            self.stats()
                .bump_high_water
                .fetch_max(end, std::sync::atomic::Ordering::Relaxed);
            bump
        };

        // Phase 3: header, owner pointer, log reset.
        write_block_header(self, block, class, size as u64);
        let user = block + BLOCK_HEADER_SIZE;
        write_dest(self, dest_off, user);
        reset_log(self);

        PoolStats::add(&self.stats().allocs, 1);
        PoolStats::add(&self.stats().bytes_live, size as u64);
        Ok(user)
    }

    /// True if `p` plausibly points at the user area of an allocator block:
    /// aligned, in bounds, and carrying the block magic in its header.
    /// Recovery validates pointers read from a possibly-corrupt image with
    /// this before deallocating through them, so torn state surfaces as a
    /// typed error instead of tripping `deallocate`'s asserts.
    pub fn looks_like_block(&self, p: RawPPtr) -> bool {
        if p.is_null() || !p.offset.is_multiple_of(8) || p.offset < BLOCK_HEADER_SIZE {
            return false;
        }
        let block = p.offset - BLOCK_HEADER_SIZE;
        if !self.in_bounds(block, BLOCK_HEADER_SIZE as usize + 8) {
            return false;
        }
        self.read_word(block + HDR_TAG) & BLOCK_MAGIC_MASK == BLOCK_MAGIC
    }

    /// Deallocates the block whose address is stored in the owner's
    /// persistent pointer at `dest_off`, persistently nulling that pointer.
    pub fn deallocate(&self, dest_off: u64) {
        let _guard = self.alloc_lock.lock();
        let _op = self.begin_checked_op("dealloc");
        let pptr: RawPPtr = self.read_at(dest_off);
        assert!(
            !pptr.is_null(),
            "deallocate through a null persistent pointer"
        );
        let block = pptr.offset - BLOCK_HEADER_SIZE;
        let tag = self.read_word(block + HDR_TAG);
        assert_eq!(
            tag & BLOCK_MAGIC_MASK,
            BLOCK_MAGIC,
            "deallocate of a non-block"
        );
        let class = (tag & !BLOCK_MAGIC_MASK) as usize;
        let user_size = self.read_word(block + HDR_USER_SIZE);

        self.write_word(LOG_DEST, dest_off);
        self.write_word(LOG_BLOCK, block);
        self.write_word(LOG_SIZE, 0);
        commit_log(self, OP_FREE);

        let head_off = OFF_FREE_HEADS + class as u64 * 8;
        self.write_word(block + HDR_NEXT, self.read_word(head_off));
        self.persist(block + HDR_NEXT, 8);
        self.write_word(head_off, block);
        self.persist(head_off, 8);

        write_dest(self, dest_off, 0);
        reset_log(self);

        PoolStats::add(&self.stats().deallocs, 1);
        PoolStats::sub(&self.stats().bytes_live, user_size);
    }

    /// User-data size of the live block at user offset `user_off`.
    pub fn block_user_size(&self, user_off: u64) -> u64 {
        self.read_word(user_off - BLOCK_HEADER_SIZE + HDR_USER_SIZE)
    }

    /// Walks the heap and returns every *live* block as `(user_off, size)`.
    ///
    /// Used by recovery-time leak audits: a block that is live here but not
    /// reachable from the data structure is a persistent leak.
    pub fn live_blocks(&self) -> Result<Vec<(u64, u64)>, AllocError> {
        let _guard = self.alloc_lock.lock();
        let mut free = std::collections::HashSet::new();
        for class in 0..NCLASS {
            let mut cur = self.read_word(OFF_FREE_HEADS + class as u64 * 8);
            let mut hops = 0u64;
            while cur != 0 {
                if !free.insert(cur) {
                    return Err(AllocError::Corrupt("free-list cycle"));
                }
                let tag = self.read_word(cur + HDR_TAG);
                if tag & BLOCK_MAGIC_MASK != BLOCK_MAGIC
                    || (tag & !BLOCK_MAGIC_MASK) as usize != class
                {
                    return Err(AllocError::Corrupt("free block header/class mismatch"));
                }
                cur = self.read_word(cur + HDR_NEXT);
                hops += 1;
                if hops > self.capacity() as u64 / BLOCK_HEADER_SIZE {
                    return Err(AllocError::Corrupt("free-list runaway"));
                }
            }
        }
        let bump = self.read_word(OFF_BUMP);
        let mut live = Vec::new();
        let mut off = USER_BASE;
        while off < bump {
            let tag = self.read_word(off + HDR_TAG);
            if tag & BLOCK_MAGIC_MASK != BLOCK_MAGIC {
                return Err(AllocError::Corrupt("heap walk hit a bad header"));
            }
            let class = (tag & !BLOCK_MAGIC_MASK) as usize;
            if class >= NCLASS {
                return Err(AllocError::Corrupt("heap walk hit a bad class"));
            }
            if !free.contains(&off) {
                live.push((off + BLOCK_HEADER_SIZE, self.read_word(off + HDR_USER_SIZE)));
            }
            off += BLOCK_HEADER_SIZE + class_size(class);
        }
        Ok(live)
    }

    /// Aggregate allocator statistics from a heap walk.
    pub fn alloc_stats(&self) -> Result<AllocStats, AllocError> {
        let live = self.live_blocks()?;
        let bump;
        let free_blocks;
        {
            let _guard = self.alloc_lock.lock();
            bump = self.read_word(OFF_BUMP);
            let mut count = 0usize;
            for class in 0..NCLASS {
                let mut cur = self.read_word(OFF_FREE_HEADS + class as u64 * 8);
                while cur != 0 {
                    count += 1;
                    cur = self.read_word(cur + HDR_NEXT);
                }
            }
            free_blocks = count;
        }
        Ok(AllocStats {
            live_blocks: live.len(),
            free_blocks,
            live_bytes: live.iter().map(|&(_, s)| s).sum(),
            bump,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{crash_is_injected, PoolOptions};
    use crate::pptr::RawPPtr;

    fn pool() -> PmemPool {
        PmemPool::create(PoolOptions::direct(4 << 20)).unwrap()
    }

    /// A little persistent struct holding one owner pointer at a fixed spot.
    fn owner_slot(pool: &PmemPool) -> u64 {
        // Allocate a block to hold the owner pointer itself so the slot is
        // part of "persistent data" — here we just reserve the first block.
        pool.allocate(crate::pool::USER_BASE + 2048, 64).unwrap()
    }

    #[test]
    fn class_for_rounds_up_to_pow2() {
        assert_eq!(class_for(1).unwrap(), 0);
        assert_eq!(class_for(64).unwrap(), 0);
        assert_eq!(class_for(65).unwrap(), 1);
        assert_eq!(class_for(128).unwrap(), 1);
        assert_eq!(class_for(1 << 25).unwrap(), NCLASS - 1);
        assert!(class_for((1 << 25) + 1).is_err());
        assert!(class_for(0).is_err());
    }

    #[test]
    fn allocate_publishes_owner_pointer() {
        let p = pool();
        let slot = owner_slot(&p);
        let user = p.allocate(slot, 100).unwrap();
        assert_eq!(user % 64, 0, "user data must be cache-line aligned");
        let back: RawPPtr = p.read_at(slot);
        assert_eq!(back.offset, user);
        assert_eq!(back.file_id, p.file_id());
    }

    #[test]
    fn deallocate_nulls_owner_pointer_and_reuses_block() {
        let p = pool();
        let slot = owner_slot(&p);
        let user1 = p.allocate(slot, 100).unwrap();
        p.deallocate(slot);
        let back: RawPPtr = p.read_at(slot);
        assert!(back.is_null());
        let user2 = p.allocate(slot, 100).unwrap();
        assert_eq!(user1, user2, "freed block must be reused (same class)");
    }

    #[test]
    fn different_classes_do_not_mix() {
        let p = pool();
        let slot = owner_slot(&p);
        let small = p.allocate(slot, 64).unwrap();
        p.deallocate(slot);
        let large = p.allocate(slot, 4096).unwrap();
        assert_ne!(
            small, large,
            "a 4 KiB request must not land on a 64 B block"
        );
    }

    #[test]
    fn out_of_memory_is_clean() {
        let p = PmemPool::create(PoolOptions::direct(16384)).unwrap();
        let slot = USER_BASE + 1024;
        // Each 4 KiB-class alloc takes 64 + 4096 bytes; pool is 16 KiB total
        // with 4 KiB header, so the second must fail.
        let mut allocs = 0;
        loop {
            match p.allocate(slot + allocs * 16, 4096) {
                Ok(_) => allocs += 1,
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(allocs < 10);
        }
        // Allocator must still work for smaller sizes after an OOM.
        p.allocate(slot + 512, 64).unwrap();
    }

    #[test]
    fn live_blocks_tracks_alloc_free() {
        let p = pool();
        let s1 = USER_BASE + 1024;
        let s2 = USER_BASE + 1040;
        let a = p.allocate(s1, 200).unwrap();
        let b = p.allocate(s2, 300).unwrap();
        let live = p.live_blocks().unwrap();
        let offs: Vec<u64> = live.iter().map(|&(o, _)| o).collect();
        assert!(offs.contains(&a) && offs.contains(&b));
        p.deallocate(s1);
        let live = p.live_blocks().unwrap();
        let offs: Vec<u64> = live.iter().map(|&(o, _)| o).collect();
        assert!(!offs.contains(&a) && offs.contains(&b));
        let stats = p.alloc_stats().unwrap();
        assert_eq!(stats.live_blocks, 1);
        assert_eq!(stats.free_blocks, 1);
        assert_eq!(stats.live_bytes, 300);
    }

    /// Crash-inject at every persistence event inside allocate/deallocate;
    /// after recovery either the operation fully happened (owner pointer set,
    /// block live) or fully did not (owner null, no leak).
    #[test]
    fn alloc_free_crash_atomicity_exhaustive() {
        for fuse in 0..40u64 {
            let p = PmemPool::create(PoolOptions::tracked(4 << 20)).unwrap();
            let slot = USER_BASE + 1024;
            // A pre-existing allocation so free lists get exercised.
            let pre_slot = USER_BASE + 1056;
            p.allocate(pre_slot, 128).unwrap();
            p.deallocate(pre_slot);

            p.set_crash_fuse(Some(fuse));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.allocate(slot, 128).map(|_| ())
            }));
            p.set_crash_fuse(None);
            let crashed = match outcome {
                Ok(_) => false,
                Err(e) => {
                    assert!(crash_is_injected(e.as_ref()), "non-injected panic");
                    true
                }
            };

            for seed in [1u64, 7, 42] {
                let img = p.crash_image(seed);
                let p2 = PmemPool::reopen(img, PoolOptions::tracked(0)).unwrap();
                let owner: RawPPtr = p2.read_at(slot);
                let live = p2.live_blocks().unwrap();
                let owned: Vec<u64> = live.iter().map(|&(o, _)| o).collect();
                if owner.is_null() {
                    // Rolled back: exactly zero live blocks besides none.
                    assert!(
                        live.is_empty(),
                        "fuse={fuse} seed={seed}: leak — live blocks with null owner: {owned:?}"
                    );
                } else {
                    assert_eq!(
                        owned,
                        vec![owner.offset],
                        "fuse={fuse} seed={seed}: allocator/owner disagree"
                    );
                }
                if !crashed {
                    // Completed operations must be durable.
                    assert!(!owner.is_null(), "fuse={fuse}: completed alloc lost");
                }
            }
        }
    }

    #[test]
    fn free_crash_atomicity_exhaustive() {
        for fuse in 0..30u64 {
            let p = PmemPool::create(PoolOptions::tracked(4 << 20)).unwrap();
            let slot = USER_BASE + 1024;
            p.allocate(slot, 128).unwrap();

            p.set_crash_fuse(Some(fuse));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.deallocate(slot);
            }));
            p.set_crash_fuse(None);
            let crashed = outcome.is_err();

            for seed in [3u64, 9] {
                let img = p.crash_image(seed);
                let p2 = PmemPool::reopen(img, PoolOptions::tracked(0)).unwrap();
                let owner: RawPPtr = p2.read_at(slot);
                let live = p2.live_blocks().unwrap();
                if owner.is_null() {
                    assert!(
                        live.is_empty(),
                        "fuse={fuse} seed={seed}: freed block still live"
                    );
                } else {
                    assert_eq!(
                        live.len(),
                        1,
                        "fuse={fuse} seed={seed}: owner set but block gone"
                    );
                    assert_eq!(live[0].0, owner.offset);
                }
                if !crashed {
                    assert!(owner.is_null(), "fuse={fuse}: completed free not durable");
                }
            }
        }
    }

    #[test]
    fn recovery_is_idempotent() {
        // Crash mid-alloc, recover, then recover again from a re-crash of
        // the recovered image: state must stay consistent.
        let p = PmemPool::create(PoolOptions::tracked(4 << 20)).unwrap();
        let slot = USER_BASE + 1024;
        p.set_crash_fuse(Some(6));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.allocate(slot, 128);
        }));
        p.set_crash_fuse(None);
        let img = p.crash_image(11);
        let p2 = PmemPool::reopen(img, PoolOptions::tracked(0)).unwrap();
        let img2 = p2.clean_image();
        let p3 = PmemPool::reopen(img2, PoolOptions::tracked(0)).unwrap();
        let o2: RawPPtr = p2.read_at(slot);
        let o3: RawPPtr = p3.read_at(slot);
        assert_eq!(o2, o3);
        assert_eq!(p2.live_blocks().unwrap(), p3.live_blocks().unwrap());
    }
}
