//! Integration tests for the pmemcheck-style durability checker.
//!
//! Positive direction: every real FPTree write path — single-threaded,
//! concurrent, variable-size keys, leaf groups, allocator, recovery — must
//! produce a clean [`DurabilityReport`]. Negative direction: deliberately
//! broken persist-order protocols (a removed `persist`, a commit record
//! flushed together with its operands, a straddling publish, an unpublished
//! multi-word store) must each be caught as the right violation kind.

use std::sync::Arc;

use fptree_suite::core::keys::VarKey;
use fptree_suite::core::{ConcurrentFPTree, FPTree, SingleTree, TreeConfig};
use fptree_suite::pmem::{
    crash_is_injected, PmemPool, PoolOptions, RawPPtr, ViolationKind, ROOT_SLOT, USER_BASE,
};

fn checked_pool(bytes: usize) -> Arc<PmemPool> {
    Arc::new(PmemPool::create(PoolOptions::tracked(bytes).with_checker()).expect("pool"))
}

// ------------------------------------------------------------ clean paths

#[test]
fn single_tree_workload_is_clean_and_counted() {
    let pool = checked_pool(32 << 20);
    let cfg = TreeConfig::fptree()
        .with_leaf_capacity(4)
        .with_inner_fanout(4);
    let mut tree = FPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
    for k in 0..200u64 {
        assert!(tree.insert(&k, k * 10));
    }
    for k in (0..200u64).step_by(3) {
        assert!(tree.update(&k, k * 10 + 1));
    }
    for k in (0..200u64).step_by(2) {
        assert!(tree.remove(&k));
    }
    // Counters surface through the pool stats for bench `--verbose`.
    // 200 inserts + 67 updates + 100 removes = 367 tree-level ops, plus
    // pool/tree creation and nested allocator ops.
    let snap = pool.stats().snapshot();
    assert!(
        snap.checker_ops >= 367,
        "ops not counted: {}",
        snap.checker_ops
    );
    assert!(snap.checker_events > 0);
    assert_eq!(snap.checker_violations, 0);

    let report = pool.take_durability_report();
    assert!(
        report.is_clean(),
        "single-tree workload dirty:\n{}",
        report.render()
    );
    assert!(report.ops_checked >= 367);
    assert!(report.events_recorded > 0);

    pool.stats().reset();
    assert_eq!(pool.stats().snapshot().checker_events, 0);
}

#[test]
fn var_key_grouped_tree_workload_is_clean() {
    let pool = checked_pool(32 << 20);
    let cfg = TreeConfig::fptree_var()
        .with_leaf_capacity(4)
        .with_inner_fanout(4)
        .with_leaf_group_size(2);
    let mk = |k: u64| format!("key:{k:05}").into_bytes();
    let mut tree = SingleTree::<VarKey>::create(Arc::clone(&pool), cfg, ROOT_SLOT);
    for k in 0..120u64 {
        assert!(tree.insert(&mk(k), k));
    }
    for k in (0..120u64).step_by(2) {
        assert!(tree.update(&mk(k), k + 1));
    }
    // Deep removal drains leaves, exercising FreeLeaf group retirement and
    // variable-key blob deallocation (both publish-heavy paths).
    for k in 0..100u64 {
        assert!(tree.remove(&mk(k)));
    }
    pool.assert_durability_clean();
}

#[test]
fn bulk_load_and_reopen_are_clean() {
    let pool = checked_pool(32 << 20);
    let cfg = TreeConfig::fptree()
        .with_leaf_capacity(8)
        .with_inner_fanout(4);
    let entries: Vec<(u64, u64)> = (0..500u64).map(|k| (k, k * 7)).collect();
    {
        let _tree = FPTree::bulk_load(Arc::clone(&pool), cfg, ROOT_SLOT, &entries);
    }
    pool.assert_durability_clean();

    // A clean image reopened under the checker: recovery (allocator log
    // replay + tree open + rebuild) must itself be clean.
    let image = pool.clean_image();
    let pool2 =
        Arc::new(PmemPool::reopen(image, PoolOptions::tracked(0).with_checker()).expect("reopen"));
    let tree = FPTree::open(Arc::clone(&pool2), ROOT_SLOT).expect("recover");
    assert_eq!(tree.len(), 500);
    pool2.assert_durability_clean();
}

#[test]
fn concurrent_tree_workload_is_clean() {
    let pool = checked_pool(32 << 20);
    let cfg = TreeConfig::fptree_concurrent()
        .with_leaf_capacity(8)
        .with_inner_fanout(8);
    let tree = Arc::new(ConcurrentFPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT));
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..150u64 {
                    let k = t * 1000 + i;
                    assert!(tree.insert(&k, k));
                    if i % 3 == 0 {
                        assert!(tree.update(&k, k + 1));
                    }
                    if i % 4 == 0 {
                        assert!(tree.remove(&k));
                    }
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("worker");
    }
    let report = pool.take_durability_report();
    assert!(
        report.is_clean(),
        "concurrent workload dirty:\n{}",
        report.render()
    );
    assert!(report.ops_checked >= 4 * 150);
}

/// The batched commit protocol — stage many slots with plain stores, one
/// coalesced flush span, one p-atomic bitmap publish per leaf run — must
/// pass the same checker as the single-op protocol, on every variant and
/// with mid-run splits.
#[test]
fn batched_workload_is_clean_on_every_variant() {
    let entries: Vec<(u64, u64)> = (0..300u64).map(|k| ((k * 37) % 1000, k)).collect();
    let dead: Vec<u64> = entries.iter().map(|(k, _)| *k).step_by(2).collect();

    // Single-threaded, with and without leaf groups.
    for group in [0usize, 4] {
        let pool = checked_pool(32 << 20);
        let cfg = TreeConfig::fptree()
            .with_leaf_capacity(4)
            .with_inner_fanout(4)
            .with_leaf_group_size(group);
        let mut tree = FPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
        for chunk in entries.chunks(48) {
            tree.insert_batch(chunk);
        }
        for chunk in dead.chunks(48) {
            tree.remove_batch(chunk);
        }
        let report = pool.take_durability_report();
        assert!(
            report.is_clean(),
            "batched single-tree (groups {group}) dirty:\n{}",
            report.render()
        );
    }

    // Variable keys: slot stores carry blob pointers, so batched runs also
    // cover the blob-allocation publish protocol.
    let pool = checked_pool(32 << 20);
    let cfg = TreeConfig::fptree_var()
        .with_leaf_capacity(4)
        .with_inner_fanout(4)
        .with_leaf_group_size(2);
    let mk = |k: u64| format!("key:{k:05}").into_bytes();
    let mut tree = SingleTree::<VarKey>::create(Arc::clone(&pool), cfg, ROOT_SLOT);
    let var_entries: Vec<(Vec<u8>, u64)> = entries.iter().map(|&(k, v)| (mk(k), v)).collect();
    let var_dead: Vec<Vec<u8>> = dead.iter().map(|&k| mk(k)).collect();
    for chunk in var_entries.chunks(48) {
        tree.insert_batch(chunk);
    }
    for chunk in var_dead.chunks(48) {
        tree.remove_batch(chunk);
    }
    pool.assert_durability_clean();

    // Concurrent: batched runs race single ops from other threads.
    let pool = checked_pool(32 << 20);
    let cfg = TreeConfig::fptree_concurrent()
        .with_leaf_capacity(8)
        .with_inner_fanout(8);
    let tree = Arc::new(ConcurrentFPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT));
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mine: Vec<(u64, u64)> = (0..200u64).map(|i| (t * 1000 + i, i)).collect();
                for chunk in mine.chunks(32) {
                    tree.insert_batch(chunk);
                }
                let keys: Vec<u64> = mine.iter().map(|(k, _)| *k).step_by(3).collect();
                for chunk in keys.chunks(32) {
                    tree.remove_batch(chunk);
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("worker");
    }
    let report = pool.take_durability_report();
    assert!(
        report.is_clean(),
        "concurrent batched workload dirty:\n{}",
        report.render()
    );
}

/// Crash a batched ingest at a handful of fixed persistence events —
/// landing mid-stage, between leaf runs, and inside a mid-run split — then
/// recover under the checker; both sides must be protocol-clean.
#[test]
fn batched_recovery_is_clean_after_midrun_crash() {
    let entries: Vec<(u64, u64)> = (0..400u64).map(|k| (k, k * 3)).collect();
    for fuse in [40u64, 75, 110, 300, 900] {
        let pool = checked_pool(32 << 20);
        let cfg = TreeConfig::fptree()
            .with_leaf_capacity(4)
            .with_inner_fanout(4);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut tree = FPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
            pool.set_crash_fuse(Some(fuse));
            for chunk in entries.chunks(64) {
                tree.insert_batch(chunk);
            }
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = outcome {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic");
        }
        pool.assert_durability_clean();

        let img = pool.crash_image(fuse.wrapping_mul(0x9e37_79b9));
        let pool2 = Arc::new(
            PmemPool::reopen(img, PoolOptions::tracked(0).with_checker()).expect("reopen"),
        );
        let tree = FPTree::open(Arc::clone(&pool2), ROOT_SLOT).expect("recover");
        tree.check_consistency().expect("recovered tree consistent");
        // Staged-but-unpublished slots must be invisible: every surviving
        // key is one the ingest offered, with its offered value.
        for (k, v) in tree.scan(..) {
            assert_eq!(v, k * 3, "torn value for key {k} (fuse {fuse})");
        }
        pool2.assert_durability_clean();
    }
}

// ------------------------------------------ append-buffer commit point (§5.12)

/// Crash a buffered single-key insert at every persistence event around its
/// one-publish commit — landing before the entry publish (the entry must be
/// invisible after recovery), inside the multi-word publish (a torn sibling
/// word must kill the checksummed tag), and after it (the entry must be
/// durable or recoverable) — on the single-threaded variant. The checker
/// must accept both sides of the crash, and recovery must be atomic: the
/// in-flight key is present-with-its-value or absent, never torn.
#[test]
fn wbuf_commit_crash_sweep_single_tree() {
    for fuse in 1..=14u64 {
        let pool = checked_pool(32 << 20);
        let cfg = TreeConfig::fptree()
            .with_leaf_capacity(8)
            .with_inner_fanout(4)
            .with_leaf_group_size(0);
        let mut tree = FPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
        // Prime past the first-leaf setup so the fuse lands inside the
        // append itself (and, at higher fuses, inside the fold it forces).
        for k in 0..6u64 {
            assert!(tree.insert(&k, k * 10));
        }
        pool.assert_durability_clean();

        pool.set_crash_fuse(Some(fuse));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for k in 100..120u64 {
                tree.insert(&k, k * 10);
            }
        }));
        pool.set_crash_fuse(None);
        let crashed = outcome.is_err();
        if let Err(e) = outcome {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic");
        }
        assert!(crashed, "fuse {fuse} never fired");
        pool.assert_durability_clean();

        for seed in [1u64, 42, 7777] {
            let img = pool.crash_image(seed);
            let pool2 = Arc::new(
                PmemPool::reopen(img, PoolOptions::tracked(0).with_checker()).expect("reopen"),
            );
            let tree = FPTree::open(Arc::clone(&pool2), ROOT_SLOT).expect("recover");
            tree.check_consistency().expect("recovered tree consistent");
            for k in 0..6u64 {
                assert_eq!(tree.get(&k), Some(k * 10), "primed key lost (fuse {fuse})");
            }
            // Atomicity at the commit point: each in-flight key either
            // committed with its exact value or vanished.
            for k in 100..120u64 {
                match tree.get(&k) {
                    None => {}
                    Some(v) => assert_eq!(v, k * 10, "torn buffered insert (fuse {fuse})"),
                }
            }
            pool2.assert_durability_clean();
        }
    }
}

/// The same commit-point sweep on the concurrent variant (seqlock leaves,
/// parallel recovery path).
#[test]
fn wbuf_commit_crash_sweep_concurrent_tree() {
    for fuse in 1..=14u64 {
        let pool = checked_pool(32 << 20);
        let cfg = TreeConfig::fptree_concurrent()
            .with_leaf_capacity(8)
            .with_inner_fanout(4);
        let tree = ConcurrentFPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
        for k in 0..6u64 {
            assert!(tree.insert(&k, k * 10));
        }
        pool.assert_durability_clean();

        pool.set_crash_fuse(Some(fuse));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for k in 100..120u64 {
                tree.insert(&k, k * 10);
            }
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = outcome {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic");
        }
        pool.assert_durability_clean();

        for seed in [3u64, 99] {
            let img = pool.crash_image(seed);
            let pool2 = Arc::new(
                PmemPool::reopen(img, PoolOptions::tracked(0).with_checker()).expect("reopen"),
            );
            let tree = ConcurrentFPTree::open(Arc::clone(&pool2), ROOT_SLOT).expect("recover");
            tree.check_consistency().expect("recovered tree consistent");
            for k in 0..6u64 {
                assert_eq!(tree.get(&k), Some(k * 10), "primed key lost (fuse {fuse})");
            }
            for k in 100..120u64 {
                match tree.get(&k) {
                    None => {}
                    Some(v) => assert_eq!(v, k * 10, "torn buffered insert (fuse {fuse})"),
                }
            }
            pool2.assert_durability_clean();
        }
    }
}

/// Buffered single-key traffic — appends, shadowing updates, overflow
/// folds, splits of folded leaves — is protocol-clean for every buffer
/// size on both variants.
#[test]
fn wbuf_workloads_are_clean_across_buffer_sizes() {
    for wbuf in [0usize, 1, 2, 8] {
        let pool = checked_pool(32 << 20);
        let cfg = TreeConfig::fptree()
            .with_leaf_capacity(4)
            .with_inner_fanout(4)
            .with_wbuf_entries(wbuf);
        let mut tree = FPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
        for k in 0..150u64 {
            assert!(tree.insert(&k, k));
        }
        for k in (0..150u64).step_by(2) {
            assert!(tree.update(&k, k + 1));
        }
        for k in (0..150u64).step_by(3) {
            assert!(tree.remove(&k));
        }
        let report = pool.take_durability_report();
        assert!(
            report.is_clean(),
            "single-tree wbuf={wbuf} dirty:\n{}",
            report.render()
        );

        let pool = checked_pool(32 << 20);
        let cfg = TreeConfig::fptree_concurrent()
            .with_leaf_capacity(4)
            .with_inner_fanout(4)
            .with_wbuf_entries(wbuf);
        let tree = ConcurrentFPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
        for k in 0..150u64 {
            assert!(tree.insert(&k, k));
        }
        for k in (0..150u64).step_by(2) {
            assert!(tree.update(&k, k + 1));
        }
        for k in (0..150u64).step_by(3) {
            assert!(tree.remove(&k));
        }
        let report = pool.take_durability_report();
        assert!(
            report.is_clean(),
            "concurrent wbuf={wbuf} dirty:\n{}",
            report.render()
        );
    }
}

// ------------------------------------------------- negative: broken protocols

/// The acceptance-criterion test: an insert-shaped operation whose slot
/// `persist` was deliberately removed must be reported as a missing flush.
#[test]
fn removed_persist_is_caught_as_missing_flush() {
    let pool = checked_pool(1 << 20);
    pool.take_durability_report(); // discard pool-creation events
    let slot = USER_BASE + 1024;
    let bitmap = USER_BASE + 1024 + 128; // different cache line
    {
        let _op = pool.begin_checked_op("insert_no_persist");
        pool.write_word(slot, 0xDEAD_BEEF);
        // BUG under test: `pool.persist(slot, 8)` deliberately removed.
        pool.write_publish_word(bitmap, 1);
        pool.persist(bitmap, 8);
    }
    let report = pool.take_durability_report();
    assert!(!report.is_clean());
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::MissingFlush && v.offset == slot),
        "missing flush not reported:\n{}",
        report.render()
    );
}

#[test]
fn commit_flushed_with_operands_is_caught_as_unordered_publish() {
    let pool = checked_pool(1 << 20);
    pool.take_durability_report();
    let base = USER_BASE + 2048;
    {
        let _op = pool.begin_checked_op("same_persist_commit");
        pool.write_word(base, 7);
        pool.write_publish_word(base + 8, 1);
        // BUG under test: one persist covers operand and commit record, so
        // a crash can keep the commit word while losing the operand.
        pool.persist(base, 16);
    }
    let report = pool.take_durability_report();
    assert_eq!(report.total_violations, 1, "{}", report.render());
    assert_eq!(report.violations[0].kind, ViolationKind::UnorderedPublish);
}

#[test]
fn straddling_publish_is_caught_as_torn() {
    let pool = checked_pool(1 << 20);
    pool.take_durability_report();
    let base = USER_BASE + 4096;
    {
        let _op = pool.begin_checked_op("unaligned_commit");
        // An 8-byte publish at +4 straddles two p-atomic words.
        pool.write_publish_at(base + 4, &0xABCD_EF01_2345_6789u64);
        pool.persist(base, 64);
    }
    let report = pool.take_durability_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::TornPublish),
        "torn publish not reported:\n{}",
        report.render()
    );
}

#[test]
fn multiword_store_without_commit_is_caught() {
    let pool = checked_pool(1 << 20);
    pool.take_durability_report();
    let base = USER_BASE + 8192;
    {
        let _op = pool.begin_checked_op("naked_pointer_write");
        // A 16-byte pointer written and flushed, but nothing marks it
        // committed: a crash can keep one half.
        pool.write_at(base, &RawPPtr::new(1, 0x1000));
        pool.persist(base, 16);
    }
    let report = pool.take_durability_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UnpublishedMultiWord),
        "unpublished multi-word store not reported:\n{}",
        report.render()
    );
}

#[test]
fn wasteful_flushes_are_counted_as_warnings() {
    let pool = checked_pool(1 << 20);
    pool.take_durability_report();
    let base = USER_BASE + 16384;
    {
        let _op = pool.begin_checked_op("flush_happy");
        pool.write_word(base, 1);
        pool.persist(base, 8);
        pool.persist(base, 8); // redundant: line already clean
        pool.persist(base + 4096, 8); // never written at all
    }
    let report = pool.take_durability_report();
    assert!(
        report.is_clean(),
        "warnings must not fail the run:\n{}",
        report.render()
    );
    assert_eq!(report.redundant_clean_flushes, 1);
    assert_eq!(report.unwritten_line_flushes, 1);
    let snap = pool.stats().snapshot();
    assert_eq!(snap.checker_redundant_flushes, 1);
    assert_eq!(snap.checker_unwritten_flushes, 1);
}

// --------------------------------------------- allocator recovery coverage

/// Crash an `allocate` at every persistence event; recovery — reopened
/// under the checker — must replay the redo log with a clean protocol.
#[test]
fn alloc_recovery_is_clean_at_every_crash_point() {
    for fuse in 0..40u64 {
        let pool = checked_pool(4 << 20);
        let slot = USER_BASE + 1024;
        let pre_slot = USER_BASE + 1056;
        // Pre-populate a free list so both alloc sources get exercised.
        pool.allocate(pre_slot, 128).expect("pre-alloc");
        pool.deallocate(pre_slot);
        pool.assert_durability_clean();

        pool.set_crash_fuse(Some(fuse));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.allocate(slot, 128).map(|_| ())
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = outcome {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic");
        }
        // The interrupted op is discarded unanalyzed; nothing completed
        // after it, so the trace must still be clean.
        pool.assert_durability_clean();

        for seed in [1u64, 42] {
            let img = pool.crash_image(seed);
            let pool2 =
                PmemPool::reopen(img, PoolOptions::tracked(0).with_checker()).expect("reopen");
            let report = pool2.take_durability_report();
            assert!(
                report.is_clean(),
                "fuse={fuse} seed={seed}: allocator recovery dirty:\n{}",
                report.render()
            );
            assert!(report.ops_checked >= 1, "recovery ran outside a checked op");
        }
    }
}

/// Same exhaustive sweep for `deallocate`.
#[test]
fn dealloc_recovery_is_clean_at_every_crash_point() {
    for fuse in 0..30u64 {
        let pool = checked_pool(4 << 20);
        let slot = USER_BASE + 1024;
        pool.allocate(slot, 128).expect("alloc");
        pool.assert_durability_clean();

        pool.set_crash_fuse(Some(fuse));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.deallocate(slot);
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = outcome {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic");
        }
        pool.assert_durability_clean();

        for seed in [3u64, 9] {
            let img = pool.crash_image(seed);
            let pool2 =
                PmemPool::reopen(img, PoolOptions::tracked(0).with_checker()).expect("reopen");
            let report = pool2.take_durability_report();
            assert!(
                report.is_clean(),
                "fuse={fuse} seed={seed}: free recovery dirty:\n{}",
                report.render()
            );
        }
    }
}

/// Tree-level crash + recovery under the checker at a handful of fixed
/// crash points (the proptest sweep lives in `crash_consistency.rs`).
#[test]
fn tree_recovery_is_clean_after_midsplit_crash() {
    for fuse in [60u64, 95, 130, 400] {
        let pool = checked_pool(32 << 20);
        let cfg = TreeConfig::fptree()
            .with_leaf_capacity(4)
            .with_inner_fanout(4);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut tree = FPTree::create(Arc::clone(&pool), cfg, ROOT_SLOT);
            pool.set_crash_fuse(Some(fuse));
            for k in 0..100u64 {
                tree.insert(&k, k);
            }
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = outcome {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic");
        }
        pool.assert_durability_clean();

        let img = pool.crash_image(fuse ^ 0x5eed);
        let pool2 = Arc::new(
            PmemPool::reopen(img, PoolOptions::tracked(0).with_checker()).expect("reopen"),
        );
        let tree = FPTree::open(Arc::clone(&pool2), ROOT_SLOT).expect("recover");
        tree.check_consistency().expect("recovered tree consistent");
        pool2.assert_durability_clean();
    }
}
