//! End-to-end integration: the memcached-style cache and the TATP database
//! running over every pluggable index, plus a full pipeline test (populate →
//! crash → recover → query).

use std::cell::Cell;
use std::sync::Arc;

use fptree_suite::baselines::{adapters, HashIndex, NVTreeC, StxTree, WBTree};
use fptree_suite::core::concurrent::ConcurrentFPTreeVar;
use fptree_suite::core::index::{BytesIndex, U64Index};
use fptree_suite::core::keys::{FixedKey, VarKey};
use fptree_suite::core::{ConcurrentFPTree, Locked, SingleTree, TreeConfig};
use fptree_suite::kvcache::{run_mcbench, KvCache, McBenchConfig};
use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};
use fptree_suite::tatp::{run_mix, TatpDb};

fn pool(mb: usize) -> Arc<PmemPool> {
    Arc::new(PmemPool::create(PoolOptions::direct(mb << 20)).unwrap())
}

fn bytes_indexes() -> Vec<(&'static str, Arc<dyn BytesIndex>)> {
    vec![
        (
            "fptree-var",
            Arc::new(Locked::new(SingleTree::<VarKey>::create(
                pool(128),
                TreeConfig::fptree_var(),
                ROOT_SLOT,
            ))),
        ),
        (
            "fptree-c-var",
            Arc::new(ConcurrentFPTreeVar::create(
                pool(128),
                TreeConfig::fptree_concurrent_var(),
                ROOT_SLOT,
            )),
        ),
        (
            "nvtree-var",
            Arc::new(NVTreeC::<VarKey>::create(pool(128), 16, 16, ROOT_SLOT)),
        ),
        (
            "wbtree-var",
            Arc::new(adapters::Locked::new(WBTree::<VarKey>::create(
                pool(128),
                16,
                16,
                ROOT_SLOT,
            ))),
        ),
        (
            "stx-var",
            Arc::new(adapters::Locked::new(StxTree::<Vec<u8>>::new())),
        ),
        ("hash", Arc::new(HashIndex::<Vec<u8>>::new(16))),
    ]
}

#[test]
fn kvcache_works_over_every_index() {
    for (name, index) in bytes_indexes() {
        let cache = Arc::new(KvCache::new(index));
        for i in 0..500u32 {
            cache.set(format!("k{i}").as_bytes(), i, format!("v{i}").into_bytes());
        }
        // Overwrites.
        for i in 0..500u32 {
            cache.set(format!("k{i}").as_bytes(), i, format!("w{i}").into_bytes());
        }
        for i in 0..500u32 {
            let (f, v) = cache.get(format!("k{i}").as_bytes()).unwrap();
            assert_eq!(f, i, "{name}");
            assert_eq!(v, format!("w{i}").into_bytes(), "{name}");
        }
        assert!(cache.delete(b"k0"), "{name}");
        assert_eq!(cache.get(b"k0"), None, "{name}");
        assert_eq!(cache.len(), 499, "{name}");
    }
}

#[test]
fn mcbench_runs_over_concurrent_fptree() {
    let index = Arc::new(ConcurrentFPTreeVar::create(
        pool(256),
        TreeConfig::fptree_concurrent_var(),
        ROOT_SLOT,
    ));
    let cache = Arc::new(KvCache::new(index));
    let cfg = McBenchConfig {
        requests: 4000,
        clients: 4,
        keyspace: 2000,
        value_size: 16,
        net_ns: 0,
    };
    let r = run_mcbench(cache.as_ref(), &cfg);
    assert!(r.set.ops_per_sec > 0.0 && r.get.ops_per_sec > 0.0);
    assert_eq!(cache.len(), 2000);
}

#[test]
fn tatp_runs_over_every_u64_index() {
    type Factory = Box<dyn Fn(&str) -> Arc<dyn U64Index>>;
    let factories: Vec<(&str, Factory)> = vec![
        (
            "stx",
            Box::new(|_| Arc::new(adapters::Locked::new(StxTree::<u64>::new()))),
        ),
        ("fptree", {
            let p = pool(256);
            let dir = p.allocate(ROOT_SLOT, 64 * 16).unwrap();
            let next = Cell::new(0u64);
            Box::new(move |_| {
                let slot = dir + next.get() * 16;
                next.set(next.get() + 1);
                Arc::new(Locked::new(SingleTree::<FixedKey>::create(
                    Arc::clone(&p),
                    TreeConfig::fptree(),
                    slot,
                )))
            })
        }),
        ("fptree-c", {
            let p = pool(256);
            let dir = p.allocate(ROOT_SLOT, 64 * 16).unwrap();
            let next = Cell::new(0u64);
            Box::new(move |_| {
                let slot = dir + next.get() * 16;
                next.set(next.get() + 1);
                Arc::new(ConcurrentFPTree::create(
                    Arc::clone(&p),
                    TreeConfig::fptree_concurrent(),
                    slot,
                ))
            })
        }),
        ("wbtree", {
            let p = pool(256);
            let dir = p.allocate(ROOT_SLOT, 64 * 16).unwrap();
            let next = Cell::new(0u64);
            Box::new(move |_| {
                let slot = dir + next.get() * 16;
                next.set(next.get() + 1);
                Arc::new(adapters::Locked::new(WBTree::<FixedKey>::create(
                    Arc::clone(&p),
                    32,
                    16,
                    slot,
                )))
            })
        }),
        ("nvtree", {
            let p = pool(256);
            let dir = p.allocate(ROOT_SLOT, 64 * 16).unwrap();
            let next = Cell::new(0u64);
            Box::new(move |_| {
                let slot = dir + next.get() * 16;
                next.set(next.get() + 1);
                Arc::new(NVTreeC::<FixedKey>::create(Arc::clone(&p), 64, 8, slot))
            })
        }),
    ];

    for (name, factory) in factories {
        let db = TatpDb::populate(300, &*factory, 11);
        // Every subscriber reachable.
        for s in 1..=300u64 {
            assert!(
                db.get_subscriber_data(s).is_some(),
                "{name}: subscriber {s}"
            );
        }
        let tps = run_mix(&db, 2, 4000, 3);
        assert!(tps > 0.0, "{name}");
    }
}

/// Full pipeline: populate TATP over FPTree dictionaries, crash the pool,
/// recover every index, verify queries still answer correctly.
#[test]
fn tatp_survives_restart() {
    let p = Arc::new(PmemPool::create(PoolOptions::tracked(256 << 20)).unwrap());
    let dir = p.allocate(ROOT_SLOT, 64 * 16).unwrap();
    let next = Cell::new(0u64);
    let factory = |_: &str| -> Arc<dyn U64Index> {
        let slot = dir + next.get() * 16;
        next.set(next.get() + 1);
        Arc::new(Locked::new(SingleTree::<FixedKey>::create(
            Arc::clone(&p),
            TreeConfig::fptree(),
            slot,
        )))
    };
    let db = TatpDb::populate(200, &factory, 13);
    let before: Vec<_> = (1..=200u64).map(|s| db.get_subscriber_data(s)).collect();

    let image = p.clean_image();
    let p2 = Arc::new(PmemPool::reopen(image, PoolOptions::tracked(0)).unwrap());
    let slots = next.get();
    // Recover each dictionary index and make sure the key → code mappings
    // survived: rebuild a fresh DB shell and compare PK lookups.
    let recovered: Vec<_> = (0..slots)
        .map(|i| SingleTree::<FixedKey>::open(Arc::clone(&p2), dir + i * 16).expect("recover"))
        .collect();
    // Index 0 is the subscriber PK dictionary (created first).
    let sub_pk = &recovered[0];
    for s in 1..=200u64 {
        let row = sub_pk.get(&s).expect("subscriber key survived") as usize;
        assert!(row < 200);
        assert!(before[s as usize - 1].is_some());
    }
}
