//! Crash-consistency property tests for the re-implemented baselines.
//!
//! The paper argues the NV-Tree and wBTree are leak-prone and (for the
//! wBTree) practically unrecoverable; our re-implementations add the
//! FPTree-style micro-logs the paper's own evaluation gave them, so they
//! must at least satisfy: committed operations survive any crash and the
//! structure recovers consistent (leak-freedom is *not* claimed for the
//! NV-Tree, faithfully to the paper's critique).

use std::sync::Arc;

use fptree_suite::baselines::{NVTreeC, WBTree};
use fptree_suite::core::keys::FixedKey;
use fptree_suite::pmem::{crash_is_injected, PmemPool, PoolOptions, ROOT_SLOT};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u16),
    Update(u16, u16),
    Remove(u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..150u16, any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
            1 => (0..150u16, any::<u16>()).prop_map(|(k, v)| Op::Update(k, v)),
            1 => (0..150u16).prop_map(Op::Remove),
        ],
        20..100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn wbtree_committed_ops_survive_crashes(
        schedule in ops(),
        fuse in 50u64..2000,
        seed in any::<u64>(),
    ) {
        let pool = Arc::new(PmemPool::create(PoolOptions::tracked(64 << 20)).expect("pool"));
        let completed = std::sync::Mutex::new(std::collections::BTreeMap::<u64, u64>::new());
        let in_flight = std::sync::Mutex::new(None::<u64>);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t = WBTree::<FixedKey>::create(Arc::clone(&pool), 4, 4, ROOT_SLOT);
            pool.set_crash_fuse(Some(fuse));
            for op in &schedule {
                let key = match op { Op::Insert(k, _) | Op::Update(k, _) | Op::Remove(k) => *k as u64 };
                *in_flight.lock().expect("lock") = Some(key);
                match op {
                    Op::Insert(k, v) => {
                        if t.insert(&(*k as u64), *v as u64) {
                            completed.lock().expect("lock").insert(*k as u64, *v as u64);
                        }
                    }
                    Op::Update(k, v) => {
                        if t.update(&(*k as u64), *v as u64) {
                            completed.lock().expect("lock").insert(*k as u64, *v as u64);
                        }
                    }
                    Op::Remove(k) => {
                        if t.remove(&(*k as u64)) {
                            completed.lock().expect("lock").remove(&(*k as u64));
                        }
                    }
                }
            }
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = &r {
            prop_assert!(crash_is_injected(e.as_ref()));
        }
        let image = pool.crash_image(seed);
        let pool2 = Arc::new(PmemPool::reopen(image, PoolOptions::tracked(0)).expect("reopen"));
        let t = WBTree::<FixedKey>::open(Arc::clone(&pool2), ROOT_SLOT);
        t.check_consistency().expect("wBTree consistent after crash");
        let model = completed.lock().expect("lock");
        let skip = *in_flight.lock().expect("lock");
        for (k, v) in model.iter() {
            if Some(*k) == skip {
                continue;
            }
            prop_assert_eq!(t.get(k), Some(*v), "wBTree lost committed key {}", k);
        }
    }

    #[test]
    fn nvtree_committed_ops_survive_crashes(
        schedule in ops(),
        fuse in 50u64..2000,
        seed in any::<u64>(),
    ) {
        let pool = Arc::new(PmemPool::create(PoolOptions::tracked(64 << 20)).expect("pool"));
        let completed = std::sync::Mutex::new(std::collections::BTreeMap::<u64, u64>::new());
        let in_flight = std::sync::Mutex::new(None::<u64>);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let t = NVTreeC::<FixedKey>::create(Arc::clone(&pool), 8, 4, ROOT_SLOT);
            pool.set_crash_fuse(Some(fuse));
            for op in &schedule {
                let key = match op { Op::Insert(k, _) | Op::Update(k, _) | Op::Remove(k) => *k as u64 };
                *in_flight.lock().expect("lock") = Some(key);
                match op {
                    Op::Insert(k, v) => {
                        if t.insert(&(*k as u64), *v as u64) {
                            completed.lock().expect("lock").insert(*k as u64, *v as u64);
                        }
                    }
                    Op::Update(k, v) => {
                        if t.update(&(*k as u64), *v as u64) {
                            completed.lock().expect("lock").insert(*k as u64, *v as u64);
                        }
                    }
                    Op::Remove(k) => {
                        if t.remove(&(*k as u64)) {
                            completed.lock().expect("lock").remove(&(*k as u64));
                        }
                    }
                }
            }
        }));
        pool.set_crash_fuse(None);
        if let Err(e) = &r {
            prop_assert!(crash_is_injected(e.as_ref()));
        }
        let image = pool.crash_image(seed);
        let pool2 = Arc::new(PmemPool::reopen(image, PoolOptions::tracked(0)).expect("reopen"));
        let t = NVTreeC::<FixedKey>::open(Arc::clone(&pool2), 4, ROOT_SLOT);
        t.check_consistency().expect("NV-Tree consistent after crash");
        let model = completed.lock().expect("lock");
        let skip = *in_flight.lock().expect("lock");
        for (k, v) in model.iter() {
            if Some(*k) == skip {
                continue;
            }
            prop_assert_eq!(t.get(k), Some(*v), "NV-Tree lost committed key {}", k);
        }
    }
}
