//! Property-based crash-consistency tests (the paper's central claim:
//! "the FPTree must be able to self-recover to a consistent state from any
//! software crash or power failure scenario").
//!
//! proptest generates random operation schedules, a random crash point
//! (counted in persistence events), and random survival seeds for unflushed
//! 8-byte words; after recovery the tree must be structurally consistent,
//! every *completed* operation must be durable, the in-flight operation must
//! be atomic, and the allocator must agree with the tree on every live
//! block (no persistent leaks).

use std::collections::BTreeMap;
use std::sync::Arc;

use fptree_suite::core::keys::{FixedKey, KeyKind, VarKey};
use fptree_suite::core::{SingleTree, TreeConfig};
use fptree_suite::pmem::{crash_is_injected, PmemPool, PoolOptions, RawPPtr, ROOT_SLOT};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u16),
    Update(u16, u16),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..200u16, any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (0..200u16, any::<u16>()).prop_map(|(k, v)| Op::Update(k, v)),
        1 => (0..200u16).prop_map(Op::Remove),
    ]
}

/// Generic over the key kind; drives ops, crashes, recovers, checks.
fn crash_check<K: KeyKind>(
    mk: impl Fn(u16) -> K::Owned,
    ops: &[Op],
    fuse: u64,
    seed: u64,
    group_size: usize,
    wbuf: usize,
) {
    let pool =
        Arc::new(PmemPool::create(PoolOptions::tracked(64 << 20).with_checker()).expect("pool"));
    // Completed operations and the model state they imply.
    let completed = std::sync::Mutex::new(BTreeMap::<u16, u64>::new());
    // Key of the operation executing when the crash fires: it may
    // legitimately commit or not (atomicity, not durability, applies).
    let in_flight = std::sync::Mutex::new(None::<u16>);

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let cfg = TreeConfig::fptree()
            .with_leaf_capacity(4)
            .with_inner_fanout(4)
            .with_leaf_group_size(group_size)
            .with_wbuf_entries(wbuf);
        let mut tree = SingleTree::<K>::create(Arc::clone(&pool), cfg, ROOT_SLOT);
        pool.set_crash_fuse(Some(fuse));
        for op in ops {
            *in_flight.lock().expect("in-flight") = Some(match op {
                Op::Insert(k, _) | Op::Update(k, _) | Op::Remove(k) => *k,
            });
            match op {
                Op::Insert(k, v) => {
                    if tree.insert(&mk(*k), *v as u64) {
                        completed.lock().expect("model").insert(*k, *v as u64);
                    }
                }
                Op::Update(k, v) => {
                    if tree.update(&mk(*k), *v as u64) {
                        completed.lock().expect("model").insert(*k, *v as u64);
                    }
                }
                Op::Remove(k) => {
                    if tree.remove(&mk(*k)) {
                        completed.lock().expect("model").remove(k);
                    }
                }
            }
        }
    }));
    pool.set_crash_fuse(None);
    let crashed = match outcome {
        Ok(()) => false,
        Err(e) => {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic escaped");
            true
        }
    };

    // Every completed operation must also have followed the durability
    // protocol (the crash-interrupted one is discarded unanalyzed).
    pool.assert_durability_clean();

    let image = pool.crash_image(seed);
    let pool2 =
        Arc::new(PmemPool::reopen(image, PoolOptions::tracked(0).with_checker()).expect("reopen"));
    let tree = SingleTree::<K>::open(Arc::clone(&pool2), ROOT_SLOT).expect("recover");
    tree.check_consistency().expect("recovered tree consistent");

    let model = completed.lock().expect("model");
    let interrupted = *in_flight.lock().expect("in-flight");
    if crashed {
        // Every op whose call returned before the crash must be durable.
        // The interrupted op's key is exempt: that operation may have
        // committed or not (its call never returned).
        for (k, v) in model.iter() {
            if Some(*k) == interrupted {
                continue;
            }
            assert_eq!(
                tree.get(&mk(*k)),
                Some(*v),
                "completed op on key {k} lost after crash (fuse {fuse}, seed {seed})"
            );
        }
        // Atomicity of the in-flight op: any extra key beyond the model must
        // carry a value some operation actually wrote for that key.
        for (k, v) in tree.range(&mk(0), &mk(u16::MAX)) {
            let wrote_it = ops.iter().any(|op| match op {
                Op::Insert(ok, ov) | Op::Update(ok, ov) => mk(*ok) == k && *ov as u64 == v,
                Op::Remove(_) => false,
            });
            assert!(wrote_it, "phantom entry {k:?}={v} after crash");
        }
    } else {
        assert_eq!(tree.len(), model.len(), "clean run must recover exactly");
        for (k, v) in model.iter() {
            assert_eq!(tree.get(&mk(*k)), Some(*v));
        }
    }

    // A scan over the recovered leaf chain must see exactly the committed
    // keys: strictly sorted, no torn or phantom entries, and agreeing with
    // the tree's own point reads — the leaf-chain order itself (next
    // pointers + bitmaps) is what survived the crash.
    let scanned: Vec<(K::Owned, u64)> = tree.scan(..).collect();
    assert!(
        scanned.windows(2).all(|w| w[0].0 < w[1].0),
        "recovered scan not strictly sorted (fuse {fuse}, seed {seed})"
    );
    assert_eq!(scanned.len(), tree.len(), "scan disagrees with len");
    for (k, v) in &scanned {
        assert_eq!(tree.get(k), Some(*v), "scan entry invisible to get");
    }
    if crashed {
        for (k, v) in model.iter() {
            if Some(*k) == interrupted {
                continue;
            }
            assert!(
                scanned
                    .binary_search_by(|e| e.0.cmp(&mk(*k)))
                    .map(|i| scanned[i].1 == *v)
                    .unwrap_or(false),
                "committed key {k} missing from recovered scan (fuse {fuse}, seed {seed})"
            );
        }
    } else {
        let want: Vec<(K::Owned, u64)> = model.iter().map(|(k, v)| (mk(*k), *v)).collect();
        assert_eq!(scanned, want, "clean-run scan must equal the model exactly");
    }

    // No persistent leaks: every live block is reachable from the tree.
    audit_leaks::<K>(&pool2, &tree);

    // Recovery itself (allocator log replay, micro-log replay, re-init)
    // must follow the durability protocol too.
    pool2.assert_durability_clean();
}

/// A schedule step for the batched-commit crash sweep.
#[derive(Debug, Clone)]
enum BatchOp {
    InsertBatch(Vec<(u16, u16)>),
    RemoveBatch(Vec<u16>),
}

fn batch_op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        3 => proptest::collection::vec((0..200u16, any::<u16>()), 1..40)
            .prop_map(BatchOp::InsertBatch),
        1 => proptest::collection::vec(0..200u16, 1..40).prop_map(BatchOp::RemoveBatch),
    ]
}

/// Crash sweep over the batched write path. A batch stages many slots with
/// plain stores and publishes each leaf run with one p-atomic bitmap
/// commit, so the crash windows differ from the single-op protocol: the
/// fuse can land mid-stage (staged slots must stay invisible), between two
/// runs of one batch (earlier runs durable, later ones absent), or inside
/// the split a run triggered. After recovery: completed batch calls are
/// durable in full, every surviving key carries a value some batch actually
/// wrote for it, and the durability checker accepts every persistence
/// event on both sides of the crash.
fn batch_crash_check<K: KeyKind>(
    mk: impl Fn(u16) -> K::Owned,
    ops: &[BatchOp],
    fuse: u64,
    seed: u64,
    group_size: usize,
) {
    let pool =
        Arc::new(PmemPool::create(PoolOptions::tracked(64 << 20).with_checker()).expect("pool"));
    let completed = std::sync::Mutex::new(BTreeMap::<u16, u64>::new());
    // Keys of the batch executing when the crash fires: each may have
    // committed (its run published) or not, independently.
    let in_flight = std::sync::Mutex::new(Vec::<u16>::new());

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let cfg = TreeConfig::fptree()
            .with_leaf_capacity(4)
            .with_inner_fanout(4)
            .with_leaf_group_size(group_size);
        let mut tree = SingleTree::<K>::create(Arc::clone(&pool), cfg, ROOT_SLOT);
        pool.set_crash_fuse(Some(fuse));
        for op in ops {
            match op {
                BatchOp::InsertBatch(entries) => {
                    *in_flight.lock().expect("in-flight") =
                        entries.iter().map(|(k, _)| *k).collect();
                    let batch: Vec<(K::Owned, u64)> =
                        entries.iter().map(|(k, v)| (mk(*k), *v as u64)).collect();
                    tree.insert_batch(&batch);
                    // The call returned: the whole batch is committed.
                    // First occurrence of a duplicated key wins; keys
                    // already present keep their old value.
                    let mut model = completed.lock().expect("model");
                    for (k, v) in entries {
                        model.entry(*k).or_insert(*v as u64);
                    }
                }
                BatchOp::RemoveBatch(keys) => {
                    *in_flight.lock().expect("in-flight") = keys.clone();
                    let batch: Vec<K::Owned> = keys.iter().map(|k| mk(*k)).collect();
                    tree.remove_batch(&batch);
                    let mut model = completed.lock().expect("model");
                    for k in keys {
                        model.remove(k);
                    }
                }
            }
        }
        in_flight.lock().expect("in-flight").clear();
    }));
    pool.set_crash_fuse(None);
    let crashed = match outcome {
        Ok(()) => false,
        Err(e) => {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic escaped");
            true
        }
    };
    pool.assert_durability_clean();

    let image = pool.crash_image(seed);
    let pool2 =
        Arc::new(PmemPool::reopen(image, PoolOptions::tracked(0).with_checker()).expect("reopen"));
    let tree = SingleTree::<K>::open(Arc::clone(&pool2), ROOT_SLOT).expect("recover");
    tree.check_consistency().expect("recovered tree consistent");

    let model = completed.lock().expect("model");
    let interrupted = in_flight.lock().expect("in-flight");
    if crashed {
        // Batches whose call returned before the crash are durable in
        // full; the interrupted batch's keys are exempt (each of its leaf
        // runs committed or didn't, independently).
        for (k, v) in model.iter() {
            if interrupted.contains(k) {
                continue;
            }
            assert_eq!(
                tree.get(&mk(*k)),
                Some(*v),
                "completed batch op on key {k} lost after crash (fuse {fuse}, seed {seed})"
            );
        }
        // No torn or phantom entries: every surviving key must carry a
        // value some insert batch actually offered for it — staged slots
        // whose run never published must be invisible.
        for (k, v) in tree.range(&mk(0), &mk(u16::MAX)) {
            let wrote_it = ops.iter().any(|op| match op {
                BatchOp::InsertBatch(entries) => entries
                    .iter()
                    .any(|(ok, ov)| mk(*ok) == k && *ov as u64 == v),
                BatchOp::RemoveBatch(_) => false,
            });
            assert!(wrote_it, "phantom entry {k:?}={v} after batched crash");
        }
    } else {
        assert_eq!(tree.len(), model.len(), "clean run must recover exactly");
        for (k, v) in model.iter() {
            assert_eq!(tree.get(&mk(*k)), Some(*v));
        }
    }

    // The recovered leaf chain must read as a strictly sorted scan that
    // agrees with point reads.
    let scanned: Vec<(K::Owned, u64)> = tree.scan(..).collect();
    assert!(
        scanned.windows(2).all(|w| w[0].0 < w[1].0),
        "recovered scan not strictly sorted (fuse {fuse}, seed {seed})"
    );
    assert_eq!(scanned.len(), tree.len(), "scan disagrees with len");
    for (k, v) in &scanned {
        assert_eq!(tree.get(k), Some(*v), "scan entry invisible to get");
    }

    audit_leaks::<K>(&pool2, &tree);
    pool2.assert_durability_clean();
}

/// Crash sweep over the keyspace-sharded tree. Each shard is its own pool
/// and durability domain; the fuse is armed on one proptest-chosen shard,
/// so the crash fires mid-operation on that shard while the others hold
/// only completed ops. A power failure hits the whole machine: every
/// pool's crash image drops its own unflushed lines (per-pool survival
/// seeds). Recovery reopens all shards concurrently; afterwards every
/// completed op (any shard) must be durable, the in-flight key atomic, and
/// the k-way merged scan strictly sorted.
fn sharded_crash_check(ops: &[Op], shards: usize, crash_shard: usize, fuse: u64, seed: u64) {
    use fptree_suite::core::ShardedTree;
    use fptree_suite::pmem::create_pools;

    let pools = create_pools(shards, PoolOptions::tracked(64 << 20).with_checker()).expect("pools");
    let completed = std::sync::Mutex::new(BTreeMap::<u16, u64>::new());
    let in_flight = std::sync::Mutex::new(None::<u16>);

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let cfg = TreeConfig::fptree_concurrent()
            .with_leaf_capacity(4)
            .with_inner_fanout(4);
        let tree = ShardedTree::create(pools.clone(), cfg, ROOT_SLOT);
        pools[crash_shard % shards].set_crash_fuse(Some(fuse));
        for op in ops {
            *in_flight.lock().expect("in-flight") = Some(match op {
                Op::Insert(k, _) | Op::Update(k, _) | Op::Remove(k) => *k,
            });
            match op {
                Op::Insert(k, v) => {
                    if tree.insert(&(*k as u64), *v as u64) {
                        completed.lock().expect("model").insert(*k, *v as u64);
                    }
                }
                Op::Update(k, v) => {
                    if tree.update(&(*k as u64), *v as u64) {
                        completed.lock().expect("model").insert(*k, *v as u64);
                    }
                }
                Op::Remove(k) => {
                    if tree.remove(&(*k as u64)) {
                        completed.lock().expect("model").remove(k);
                    }
                }
            }
        }
    }));
    for pool in &pools {
        pool.set_crash_fuse(None);
    }
    let crashed = match outcome {
        Ok(()) => false,
        Err(e) => {
            assert!(crash_is_injected(e.as_ref()), "non-injected panic escaped");
            true
        }
    };
    for pool in &pools {
        pool.assert_durability_clean();
    }

    // Whole-machine power failure: every shard pool loses its own unflushed
    // lines, under a per-shard survival seed.
    let pools2: Vec<Arc<PmemPool>> = pools
        .iter()
        .enumerate()
        .map(|(i, pool)| {
            let image =
                pool.crash_image(seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            Arc::new(
                PmemPool::reopen(image, PoolOptions::tracked(0).with_checker()).expect("reopen"),
            )
        })
        .collect();
    let tree = ShardedTree::open(pools2.clone(), ROOT_SLOT).expect("recover");
    tree.check_consistency().expect("recovered tree consistent");

    let model = completed.lock().expect("model");
    let interrupted = *in_flight.lock().expect("in-flight");
    if crashed {
        for (k, v) in model.iter() {
            if Some(*k) == interrupted {
                continue;
            }
            assert_eq!(
                tree.get(&(*k as u64)),
                Some(*v),
                "completed op on key {k} lost after sharded crash (fuse {fuse}, seed {seed})"
            );
        }
    } else {
        assert_eq!(tree.len(), model.len(), "clean run must recover exactly");
        for (k, v) in model.iter() {
            assert_eq!(tree.get(&(*k as u64)), Some(*v));
        }
    }

    // The merged scan over all recovered shards: strictly sorted, no
    // phantom values, agreeing with point reads.
    let scanned: Vec<(u64, u64)> = tree.scan(..).collect();
    assert!(
        scanned.windows(2).all(|w| w[0].0 < w[1].0),
        "recovered sharded scan not strictly sorted (fuse {fuse}, seed {seed})"
    );
    assert_eq!(scanned.len(), tree.len(), "scan disagrees with len");
    for (k, v) in &scanned {
        assert_eq!(tree.get(k), Some(*v), "scan entry invisible to get");
        let wrote_it = ops.iter().any(|op| match op {
            Op::Insert(ok, ov) | Op::Update(ok, ov) => *ok as u64 == *k && *ov as u64 == *v,
            Op::Remove(_) => false,
        });
        assert!(wrote_it, "phantom entry {k}={v} after sharded crash");
    }

    tree.leak_audit().expect("no persistent leaks in any shard");
    for pool in &pools2 {
        pool.assert_durability_clean();
    }
}

/// Allocator-vs-tree reachability audit.
fn audit_leaks<K: KeyKind>(pool: &Arc<PmemPool>, tree: &SingleTree<K>) {
    let live = pool.live_blocks().expect("heap walk");
    let mut reachable = std::collections::HashSet::new();
    // Tree metadata block (from the root slot).
    let owner: RawPPtr = pool.read_at(ROOT_SLOT);
    reachable.insert(owner.offset);
    // Leaf groups (group mode) by walking the persistent group list; the
    // list head lives in the metadata block — reuse the tree's own
    // accounting instead: every leaf offset and key blob.
    let cfg = tree.config();
    if cfg.leaf_group_size > 1 {
        // Group blocks are the allocation unit: collect them by walking the
        // group list stored in metadata (offset 48 within the block).
        let ghead: RawPPtr = pool.read_at(owner.offset + 48);
        let mut cur = ghead;
        while !cur.is_null() {
            reachable.insert(cur.offset);
            cur = pool.read_at(cur.offset);
        }
    } else {
        for off in tree.leaf_offsets() {
            reachable.insert(off);
        }
    }
    if K::IS_VAR {
        for off in tree.leaf_offsets() {
            // Valid slots own blobs: ask the pool for each slot pointer via
            // the tree's consistency contract (checked above); here we use
            // the public range to reach blob offsets indirectly — instead,
            // conservatively accept blocks that any valid slot references.
            let layout = fptree_suite::core::LeafLayout::new(cfg, K::SLOT_SIZE);
            let bm = pool.read_at::<u64>(off);
            for slot in 0..layout.m {
                if bm & (1 << slot) != 0 {
                    let p: RawPPtr = pool.read_at(off + layout.key_off(slot) as u64);
                    if !p.is_null() {
                        reachable.insert(p.offset);
                    }
                }
            }
        }
    }
    for (off, size) in &live {
        assert!(
            reachable.contains(off),
            "persistent leak: block at {off:#x} ({size} B) unreachable from the tree"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn fixed_keys_with_groups(
        ops in proptest::collection::vec(op_strategy(), 20..120),
        fuse in 50u64..2500,
        seed in any::<u64>(),
    ) {
        crash_check::<FixedKey>(|k| k as u64, &ops, fuse, seed, 4, 8);
    }

    #[test]
    fn fixed_keys_without_groups(
        ops in proptest::collection::vec(op_strategy(), 20..120),
        fuse in 50u64..2500,
        seed in any::<u64>(),
    ) {
        crash_check::<FixedKey>(|k| k as u64, &ops, fuse, seed, 0, 8);
    }

    /// The §5.12 append-buffer crash sweep: buffer sizes from disabled to
    /// larger than the leaf, so random fuses land inside append publishes
    /// and folds (stage + bitmap commit + generation bump) as well as the
    /// plain slot path.
    #[test]
    fn wbuf_sizes_fixed_keys(
        ops in proptest::collection::vec(op_strategy(), 20..120),
        fuse in 50u64..2500,
        seed in any::<u64>(),
        wbuf in 0usize..=6,
    ) {
        crash_check::<FixedKey>(|k| k as u64, &ops, fuse, seed, 0, wbuf);
    }

    /// Variable-size keys through the buffer: append entries own key blobs,
    /// and folds transfer blob pointers into slots then zero the dead
    /// entries — every window swept under crash + leak audit.
    #[test]
    fn wbuf_sizes_var_keys(
        ops in proptest::collection::vec(op_strategy(), 20..80),
        fuse in 50u64..2500,
        seed in any::<u64>(),
        wbuf in 1usize..=4,
    ) {
        crash_check::<VarKey>(
            |k| format!("key:{k:05}").into_bytes(),
            &ops,
            fuse,
            seed,
            2,
            wbuf,
        );
    }

    #[test]
    fn var_keys(
        ops in proptest::collection::vec(op_strategy(), 20..80),
        fuse in 50u64..2500,
        seed in any::<u64>(),
    ) {
        crash_check::<VarKey>(
            |k| format!("key:{k:05}").into_bytes(),
            &ops,
            fuse,
            seed,
            2,
            8,
        );
    }

    #[test]
    fn batched_fixed_keys_with_groups(
        ops in proptest::collection::vec(batch_op_strategy(), 2..20),
        fuse in 50u64..2500,
        seed in any::<u64>(),
    ) {
        batch_crash_check::<FixedKey>(|k| k as u64, &ops, fuse, seed, 4);
    }

    #[test]
    fn batched_fixed_keys_without_groups(
        ops in proptest::collection::vec(batch_op_strategy(), 2..20),
        fuse in 50u64..2500,
        seed in any::<u64>(),
    ) {
        batch_crash_check::<FixedKey>(|k| k as u64, &ops, fuse, seed, 0);
    }

    #[test]
    fn sharded_point_ops(
        ops in proptest::collection::vec(op_strategy(), 20..100),
        shards in 2usize..=4,
        crash_shard in 0usize..4,
        fuse in 50u64..1500,
        seed in any::<u64>(),
    ) {
        sharded_crash_check(&ops, shards, crash_shard, fuse, seed);
    }

    #[test]
    fn batched_var_keys(
        ops in proptest::collection::vec(batch_op_strategy(), 2..12),
        fuse in 50u64..2500,
        seed in any::<u64>(),
    ) {
        batch_crash_check::<VarKey>(
            |k| format!("key:{k:05}").into_bytes(),
            &ops,
            fuse,
            seed,
            2,
        );
    }
}
