//! Fuzz-style property tests for the memcached text-protocol parser: no
//! input may panic it, and rendering→parsing round-trips every command.

use std::collections::BTreeMap;

use fptree_suite::core::{FPTreeVar, Locked, TreeConfig};
use fptree_suite::kvcache::protocol::{execute, parse, Command, ParseError};
use fptree_suite::kvcache::KvCache;
use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};
use proptest::prelude::*;

fn any_key() -> impl Strategy<Value = Vec<u8>> {
    // memcached keys: printable, no whitespace/control, 1..=250 bytes.
    proptest::collection::vec(0x21u8..0x7F, 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary bytes never panic the parser.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse(&bytes);
    }

    /// Arbitrary *line-shaped* garbage never panics and never parses as a
    /// valid SET with mismatched framing.
    #[test]
    fn garbage_lines_are_rejected_or_incomplete(
        mut line in "[ -~]{0,80}",
    ) {
        line.push_str("\r\n");
        match parse(line.as_bytes()) {
            Ok((cmd, used)) => {
                // Only well-formed verbs may come out.
                prop_assert!(used <= line.len());
                match cmd {
                    Command::Set { .. } | Command::Get { .. }
                    | Command::Delete { .. } | Command::Scan { .. }
                    | Command::Stats { .. } | Command::Version
                    | Command::Quit => {}
                }
            }
            Err(ParseError::Bad(_)) | Err(ParseError::Incomplete) => {}
        }
    }

    /// SET rendering round-trips through the parser, including binary
    /// payloads containing CR/LF and the optional `noreply` suffix.
    #[test]
    fn set_roundtrips(
        key in any_key(),
        flags in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..128),
        noreply in any::<bool>(),
    ) {
        let mut msg = format!(
            "set {} {} 0 {}{}\r\n",
            String::from_utf8(key.clone()).expect("printable"),
            flags,
            data.len(),
            if noreply { " noreply" } else { "" },
        ).into_bytes();
        msg.extend_from_slice(&data);
        msg.extend_from_slice(b"\r\n");
        let (cmd, used) = parse(&msg).expect("well-formed SET parses");
        prop_assert_eq!(used, msg.len());
        prop_assert_eq!(cmd, Command::Set { key, flags, data, noreply });
    }

    /// SCAN rendering round-trips through the parser.
    #[test]
    fn scan_roundtrips(start in any_key(), count in 0usize..10_000) {
        let msg = format!(
            "scan {} {count}\r\n",
            String::from_utf8(start.clone()).expect("printable"),
        ).into_bytes();
        let (cmd, used) = parse(&msg).expect("well-formed SCAN parses");
        prop_assert_eq!(used, msg.len());
        prop_assert_eq!(cmd, Command::Scan { start, count });
    }

    /// Executing any parsed command sequence against a cache neither panics
    /// nor corrupts the cache (gets after sets return the latest data).
    #[test]
    fn command_sequences_execute_safely(
        cmds in proptest::collection::vec(
            (any_key(), proptest::collection::vec(any::<u8>(), 0..32), 0u8..3),
            1..40,
        )
    ) {
        let cache = KvCache::new(std::sync::Arc::new(
            fptree_suite::baselines::HashIndex::<Vec<u8>>::new(4),
        ));
        let mut model = std::collections::HashMap::new();
        for (key, data, kind) in cmds {
            let cmd = match kind {
                0 => {
                    model.insert(key.clone(), data.clone());
                    Command::Set { key, flags: 1, data, noreply: false }
                }
                1 => Command::Get { keys: vec![key] },
                _ => {
                    model.remove(&key);
                    Command::Delete { key, noreply: false }
                }
            };
            let resp = execute(&cache, &cmd);
            if let Command::Get { keys } = &cmd {
                match model.get(&keys[0]) {
                    Some(data) => {
                        prop_assert!(resp.starts_with(b"VALUE "), "hit must render VALUE");
                        prop_assert!(resp.ends_with(b"\r\nEND\r\n"));
                        // The payload is embedded verbatim.
                        prop_assert!(
                            resp.windows(data.len().max(1)).any(|w| w == &data[..]) || data.is_empty()
                        );
                    }
                    None => prop_assert_eq!(resp, b"END\r\n".to_vec()),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The same command mix executed against a *pool-backed* FPTree index
    /// under the durability checker: every store the cache triggers in SCM
    /// must follow the persist-order protocol. After every step the wire
    /// `scan` output is cross-checked against a BTreeMap model, and noreply
    /// mutations must render nothing while still taking effect.
    #[test]
    fn pool_backed_commands_are_durability_clean(
        cmds in proptest::collection::vec(
            (any_key(), proptest::collection::vec(any::<u8>(), 0..32), 0u8..4),
            1..40,
        )
    ) {
        let pool = std::sync::Arc::new(
            PmemPool::create(PoolOptions::tracked(16 << 20).with_checker()).expect("pool"),
        );
        let tree =
            FPTreeVar::create(std::sync::Arc::clone(&pool), TreeConfig::fptree_var(), ROOT_SLOT);
        let cache = KvCache::new(std::sync::Arc::new(Locked::new(tree)));
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (key, data, kind) in cmds {
            // Odd steps go through the silent noreply path.
            let noreply = kind % 2 == 1;
            let cmd = match kind {
                0 | 1 => {
                    model.insert(key.clone(), data.clone());
                    Command::Set { key, flags: 1, data, noreply }
                }
                2 => Command::Get { keys: vec![key] },
                _ => {
                    model.remove(&key);
                    Command::Delete { key, noreply }
                }
            };
            let resp = execute(&cache, &cmd);
            if noreply && !matches!(cmd, Command::Get { .. }) {
                prop_assert!(resp.is_empty(), "noreply must render nothing");
            }
            // Every step: the wire scan over the whole keyspace must equal
            // the model, in key order.
            let scan = Command::Scan { start: vec![0x21], count: usize::MAX };
            let mut expect = Vec::new();
            for (k, v) in &model {
                expect.extend_from_slice(
                    format!("VALUE {} 1 {}\r\n", String::from_utf8_lossy(k), v.len()).as_bytes(),
                );
                expect.extend_from_slice(v);
                expect.extend_from_slice(b"\r\n");
            }
            expect.extend_from_slice(b"END\r\n");
            prop_assert_eq!(execute(&cache, &scan), expect, "scan diverged from model");
        }
        let report = pool.take_durability_report();
        prop_assert!(report.events_recorded > 0, "checker saw no events");
        prop_assert!(report.is_clean(), "durability violations:\n{}", report.render());
    }
}

/// Incremental (byte-at-a-time) feeding reaches the same parse as one shot.
#[test]
fn incremental_parsing_matches_oneshot() {
    let msgs: &[&[u8]] = &[
        b"get alpha\r\n",
        b"set beta 7 0 3\r\nxyz\r\n",
        b"set beta 7 0 3 noreply\r\nxyz\r\n",
        b"delete gamma\r\n",
        b"delete gamma noreply\r\n",
        b"scan alpha 10\r\n",
        b"quit\r\n",
    ];
    for msg in msgs {
        let oneshot = parse(msg).expect("full parse");
        // Feed byte by byte; must stay Incomplete until the very end.
        for cut in 1..msg.len() {
            match parse(&msg[..cut]) {
                Err(ParseError::Incomplete) => {}
                Ok((_, used)) => assert!(used <= cut),
                Err(ParseError::Bad(e)) => panic!("prefix declared Bad({e}) at {cut}"),
            }
        }
        assert_eq!(parse(msg).expect("reparse"), oneshot);
    }
}
