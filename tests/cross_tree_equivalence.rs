//! Differential testing: every evaluated tree must implement identical map
//! semantics. Random workloads run against all trees and a BTreeMap oracle.

use std::collections::BTreeMap;

use fptree_suite::core::TreeConfig;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u32),
    Update(u32, u32),
    Remove(u32),
    Get(u32),
    Range(u32, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..400u32, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0..400u32, any::<u32>()).prop_map(|(k, v)| Op::Update(k, v)),
        2 => (0..400u32).prop_map(Op::Remove),
        3 => (0..400u32).prop_map(Op::Get),
        1 => (0..400u32, 0..400u32).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

/// Tree-call adapter: one closure avoids multi-borrow issues.
enum Call {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, u64),
    /// Full ordered scan; issued once after the schedule.
    ScanAll,
}

enum Resp {
    Bool(bool),
    Val(Option<u64>),
    Scan(Option<Vec<(u64, u64)>>),
}

/// Runs the schedule against one tree through a single dispatch closure,
/// checking against the oracle op by op.
fn check(name: &str, ops: &[Op], mut run: impl FnMut(Call) -> Resp) {
    let as_bool = |r: Resp| match r {
        Resp::Bool(b) => b,
        _ => panic!("expected bool"),
    };
    let mut oracle = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let expect = !oracle.contains_key(&(*k as u64));
                let got = as_bool(run(Call::Insert(*k as u64, *v as u64)));
                assert_eq!(got, expect, "{name}: insert {k}");
                if expect {
                    oracle.insert(*k as u64, *v as u64);
                }
            }
            Op::Update(k, v) => {
                let expect = oracle.contains_key(&(*k as u64));
                let got = as_bool(run(Call::Update(*k as u64, *v as u64)));
                assert_eq!(got, expect, "{name}: update {k}");
                if expect {
                    oracle.insert(*k as u64, *v as u64);
                }
            }
            Op::Remove(k) => {
                let expect = oracle.remove(&(*k as u64)).is_some();
                let got = as_bool(run(Call::Remove(*k as u64)));
                assert_eq!(got, expect, "{name}: remove {k}");
            }
            Op::Get(k) => {
                let got = match run(Call::Get(*k as u64)) {
                    Resp::Val(v) => v,
                    _ => panic!("expected val"),
                };
                assert_eq!(got, oracle.get(&(*k as u64)).copied(), "{name}: get {k}");
            }
            Op::Range(lo, hi) => {
                let got = match run(Call::Range(*lo as u64, *hi as u64)) {
                    Resp::Scan(s) => s,
                    _ => panic!("expected scan"),
                };
                if let Some(got) = got {
                    let expect: Vec<(u64, u64)> = oracle
                        .range(*lo as u64..=*hi as u64)
                        .map(|(k, v)| (*k, *v))
                        .collect();
                    assert_eq!(got, expect, "{name}: range {lo}..={hi}");
                }
            }
        }
    }
    // The full ordered view must equal the oracle after any schedule.
    if let Resp::Scan(Some(got)) = run(Call::ScanAll) {
        let expect: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, expect, "{name}: full scan");
    }
}

fn small(cfg: TreeConfig) -> TreeConfig {
    cfg.with_leaf_capacity(4).with_inner_fanout(4)
}

/// A schedule step for the batched write path: each batch may hold
/// duplicates and keys that are already present or absent.
#[derive(Debug, Clone)]
enum BatchOp {
    InsertBatch(Vec<(u32, u32)>),
    RemoveBatch(Vec<u32>),
}

fn batch_op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        3 => proptest::collection::vec((0..300u32, any::<u32>()), 0..48)
            .prop_map(BatchOp::InsertBatch),
        2 => proptest::collection::vec(0..300u32, 0..48).prop_map(BatchOp::RemoveBatch),
    ]
}

/// Loop-of-singles semantics for a batch, applied to the oracle: inserts
/// take the first occurrence of a duplicated key, removes count each key
/// once. `insert_batch`/`remove_batch` must return exactly these counts and
/// leave the tree equal to the oracle.
fn apply_batch_to_oracle(oracle: &mut BTreeMap<u64, u64>, op: &BatchOp) -> usize {
    match op {
        BatchOp::InsertBatch(entries) => entries
            .iter()
            .filter(|(k, v)| {
                use std::collections::btree_map::Entry;
                match oracle.entry(*k as u64) {
                    Entry::Vacant(e) => {
                        e.insert(*v as u64);
                        true
                    }
                    Entry::Occupied(_) => false,
                }
            })
            .count(),
        BatchOp::RemoveBatch(keys) => keys
            .iter()
            .filter(|k| oracle.remove(&(**k as u64)).is_some())
            .count(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_trees_agree(ops in proptest::collection::vec(op_strategy(), 50..250)) {
        use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        use std::sync::Arc;

        // FPTree (single-threaded, leaf groups).
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let mut t = fptree_suite::core::FPTree::create(
                pool,
                small(TreeConfig::fptree()).with_leaf_group_size(2),
                ROOT_SLOT,
            );
            check("fptree", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
            t.check_consistency().unwrap();
        }
        // PTree config.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let mut t = fptree_suite::core::FPTree::create(
                pool,
                small(TreeConfig::ptree()),
                ROOT_SLOT,
            );
            check("ptree", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
        }
        // Concurrent FPTree.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let t = fptree_suite::core::ConcurrentFPTree::create(
                pool,
                small(TreeConfig::fptree_concurrent()),
                ROOT_SLOT,
            );
            check("fptree-c", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
            t.check_consistency().unwrap();
        }
        // wBTree.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(128 << 20)).unwrap());
            let mut t = fptree_suite::baselines::WBTreeFixed::create(pool, 4, 4, ROOT_SLOT);
            check("wbtree", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan_from(&0, usize::MAX))),
            });
            t.check_consistency().unwrap();
        }
        // NV-Tree.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(128 << 20)).unwrap());
            let t = fptree_suite::baselines::NVTree::<fptree_suite::core::FixedKey>::create(
                pool, 8, 4, ROOT_SLOT,
            );
            check("nvtree", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan_from(&0, usize::MAX))),
            });
            t.check_consistency().unwrap();
        }
        // STXTree.
        {
            let mut t = fptree_suite::baselines::StxTree::<u64>::with_capacities(4, 4);
            check("stx", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan_from(&0, usize::MAX))),
            });
        }
    }

    #[test]
    fn sharded_tree_agrees_at_every_shard_count(
        ops in proptest::collection::vec(op_strategy(), 50..200),
    ) {
        use fptree_suite::pmem::{create_pools, PoolOptions, ROOT_SLOT};

        // Hash-sharding must be invisible to map semantics at any shard
        // count — including 7, which exercises non-power-of-two routing.
        for shards in [1usize, 2, 4, 7] {
            let pools = create_pools(shards, PoolOptions::direct(64 << 20)).unwrap();
            let t = fptree_suite::core::ShardedTree::create(
                pools,
                small(TreeConfig::fptree_concurrent()),
                ROOT_SLOT,
            );
            check(&format!("sharded-{shards}"), &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
            t.check_consistency().unwrap();
            t.leak_audit().unwrap();
        }
    }

    #[test]
    fn sharded_scan_from_is_sorted_dup_free_and_matches_one_shard(
        keys in proptest::collection::vec(any::<u32>(), 1..300),
        start in any::<u32>(),
        count in 1..64usize,
    ) {
        use fptree_suite::core::index::U64Index;
        use fptree_suite::pmem::{create_pools, PoolOptions, ROOT_SLOT};

        // The k-way merged scan through the index seam must be strictly
        // sorted, duplicate-free, and bit-identical to an unsharded tree's.
        let mk = |n: usize| {
            let pools = create_pools(n, PoolOptions::direct(64 << 20)).unwrap();
            let t = fptree_suite::core::ShardedTree::create(
                pools,
                small(TreeConfig::fptree_concurrent()),
                ROOT_SLOT,
            );
            for &k in &keys {
                t.insert(&(k as u64), k as u64 + 1);
            }
            t
        };
        let one = mk(1);
        let four = mk(4);
        let got = four.scan_from(start as u64, count).expect("sharded scans");
        prop_assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "sorted, dup-free");
        prop_assert_eq!(got, one.scan_from(start as u64, count).expect("scans"));
    }

    #[test]
    fn batch_ops_match_loop_oracle(ops in proptest::collection::vec(batch_op_strategy(), 1..40)) {
        use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        use std::sync::Arc;

        // Single-threaded FPTree with leaf groups.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let mut t = fptree_suite::core::FPTree::create(
                pool,
                small(TreeConfig::fptree()).with_leaf_group_size(2),
                ROOT_SLOT,
            );
            let mut oracle = BTreeMap::new();
            for op in &ops {
                let expect = apply_batch_to_oracle(&mut oracle, op);
                let got = match op {
                    BatchOp::InsertBatch(entries) => {
                        let e: Vec<(u64, u64)> =
                            entries.iter().map(|(k, v)| (*k as u64, *v as u64)).collect();
                        t.insert_batch(&e)
                    }
                    BatchOp::RemoveBatch(keys) => {
                        let k: Vec<u64> = keys.iter().map(|k| *k as u64).collect();
                        t.remove_batch(&k)
                    }
                };
                prop_assert_eq!(got, expect, "fptree: {:?}", op);
            }
            let got: Vec<(u64, u64)> = t.scan(..).collect();
            let expect: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, expect, "fptree: scan after batches");
            t.check_consistency().unwrap();
        }
        // Concurrent FPTree (one leaf lock per run).
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let t = fptree_suite::core::ConcurrentFPTree::create(
                pool,
                small(TreeConfig::fptree_concurrent()),
                ROOT_SLOT,
            );
            let mut oracle = BTreeMap::new();
            for op in &ops {
                let expect = apply_batch_to_oracle(&mut oracle, op);
                let got = match op {
                    BatchOp::InsertBatch(entries) => {
                        let e: Vec<(u64, u64)> =
                            entries.iter().map(|(k, v)| (*k as u64, *v as u64)).collect();
                        t.insert_batch(&e)
                    }
                    BatchOp::RemoveBatch(keys) => {
                        let k: Vec<u64> = keys.iter().map(|k| *k as u64).collect();
                        t.remove_batch(&k)
                    }
                };
                prop_assert_eq!(got, expect, "fptree-c: {:?}", op);
            }
            let got: Vec<(u64, u64)> = t.scan(..).collect();
            let expect: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, expect, "fptree-c: scan after batches");
            t.check_consistency().unwrap();
        }
        // Variable-key FPTree: batch path over byte-string keys.
        {
            let key = |k: u32| format!("key:{k:06}").into_bytes();
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(128 << 20)).unwrap());
            let mut t = fptree_suite::core::FPTreeVar::create(
                pool,
                small(TreeConfig::fptree_var()).with_leaf_group_size(2),
                ROOT_SLOT,
            );
            let mut oracle = BTreeMap::new();
            for op in &ops {
                let expect = apply_batch_to_oracle(&mut oracle, op);
                let got = match op {
                    BatchOp::InsertBatch(entries) => {
                        let e: Vec<(Vec<u8>, u64)> =
                            entries.iter().map(|(k, v)| (key(*k), *v as u64)).collect();
                        t.insert_batch(&e)
                    }
                    BatchOp::RemoveBatch(keys) => {
                        let k: Vec<Vec<u8>> = keys.iter().map(|k| key(*k)).collect();
                        t.remove_batch(&k)
                    }
                };
                prop_assert_eq!(got, expect, "fptree-var: {:?}", op);
            }
            let got: Vec<(Vec<u8>, u64)> = t.scan(..).collect();
            let expect: Vec<(Vec<u8>, u64)> =
                oracle.iter().map(|(k, v): (&u64, &u64)| (key(*k as u32), *v)).collect();
            prop_assert_eq!(got, expect, "fptree-var: scan after batches");
            t.check_consistency().unwrap();
        }
    }

    #[test]
    fn buffered_writes_match_loop_oracle(
        ops in proptest::collection::vec(op_strategy(), 50..250),
        wbuf in 1usize..=8,
    ) {
        use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        use std::sync::Arc;

        // Single-key writes that commit through the per-leaf append buffer
        // (§5.12) must be observationally identical to the loop-of-singles
        // oracle at every buffer size, for gets, ranges, and full scans —
        // including reads that land while entries are still buffered.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let mut t = fptree_suite::core::FPTree::create(
                pool,
                small(TreeConfig::fptree())
                    .with_leaf_group_size(2)
                    .with_wbuf_entries(wbuf),
                ROOT_SLOT,
            );
            check(&format!("fptree-wbuf{wbuf}"), &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
            t.check_consistency().unwrap();
        }
        // Concurrent variant: the buffer rides under the leaf lock.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let t = fptree_suite::core::ConcurrentFPTree::create(
                pool,
                small(TreeConfig::fptree_concurrent()).with_wbuf_entries(wbuf),
                ROOT_SLOT,
            );
            check(&format!("fptree-c-wbuf{wbuf}"), &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
            t.check_consistency().unwrap();
        }
        // Batch entry points on a buffered tree still follow loop-of-singles
        // semantics: the fold path and the batch path may not disagree.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let mut t = fptree_suite::core::FPTree::create(
                pool,
                small(TreeConfig::fptree()).with_wbuf_entries(wbuf),
                ROOT_SLOT,
            );
            let mut oracle = BTreeMap::new();
            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        let expect = usize::from(!oracle.contains_key(&(*k as u64)));
                        let got = t.insert_batch(&[(*k as u64, *v as u64)]);
                        prop_assert_eq!(got, expect, "batch-of-one insert {}", k);
                        if expect == 1 {
                            oracle.insert(*k as u64, *v as u64);
                        }
                    }
                    Op::Remove(k) => {
                        let expect = usize::from(oracle.remove(&(*k as u64)).is_some());
                        let got = t.remove_batch(&[*k as u64]);
                        prop_assert_eq!(got, expect, "batch-of-one remove {}", k);
                    }
                    _ => {}
                }
            }
            let got: Vec<(u64, u64)> = t.scan(..).collect();
            let expect: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, expect, "buffered batch-of-one: scan");
            t.check_consistency().unwrap();
        }
    }

    #[test]
    fn swar_and_scalar_probes_agree_on_random_leaves(
        m in 1usize..=64,
        bitmap in any::<u64>(),
        mut keys in proptest::collection::vec(0u64..96, 64),
        probes in proptest::collection::vec(0u64..96, 32),
        wbuf in prop_oneof![Just(0usize), Just(8usize)],
        collide in any::<bool>(),
    ) {
        use fptree_suite::core::fingerprint::fingerprint_u64;
        use fptree_suite::core::keys::{FixedKey, KeyKind};
        use fptree_suite::core::layout::LeafLayout;
        use fptree_suite::core::leaf::Leaf;
        use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};

        // Fingerprint-collision-heavy variant: rewrite every other slot to a
        // distinct key sharing slot 0's fingerprint, so the probe's word
        // match-mask is dense and the full-key confirm actually decides.
        if collide {
            let base = keys[0];
            let fp = fingerprint_u64(base);
            let mut next = base;
            for k in keys.iter_mut().skip(1).step_by(2) {
                next += 1;
                while fingerprint_u64(next) != fp {
                    next += 1;
                }
                *k = next;
            }
        }

        // The SWAR word probe and the scalar byte loop must agree on every
        // (bitmap, keyset, probe) — same slot or same absence — and charge
        // the same SCM lines; layouts differ only in probe strategy, so both
        // views read identical leaf bytes.
        let cfg_on = TreeConfig {
            leaf_capacity: m,
            wbuf_entries: wbuf,
            ..TreeConfig::fptree()
        };
        let cfg_off = TreeConfig { swar_probe: false, ..cfg_on };
        let lay_on = LeafLayout::new(&cfg_on, FixedKey::SLOT_SIZE);
        let lay_off = LeafLayout::new(&cfg_off, FixedKey::SLOT_SIZE);
        let pool = PmemPool::create(PoolOptions::direct(1 << 20)).unwrap();
        let off = pool.allocate(ROOT_SLOT, lay_on.size).unwrap();
        pool.write_bytes(off, &vec![0u8; lay_on.size]);

        let swar = Leaf::new(&pool, &lay_on, off);
        for (slot, k) in keys.iter().take(m).enumerate() {
            FixedKey::write_slot(&pool, swar.key_off(slot), k);
            swar.set_value(slot, k + 1000);
            swar.set_fingerprint(slot, FixedKey::fingerprint(k));
        }
        swar.commit_bitmap(bitmap & lay_on.full_bitmap());

        let scalar = Leaf::new(&pool, &lay_off, off);
        for k in probes.iter().chain(keys.iter().take(m)) {
            pool.stats().reset();
            let a = swar.find_slot::<FixedKey>(k);
            let la = pool.stats().snapshot().read_lines;
            pool.stats().reset();
            let b = scalar.find_slot::<FixedKey>(k);
            let lb = pool.stats().snapshot().read_lines;
            prop_assert_eq!(a, b, "probe {} diverged (m={}, bitmap={:#x})", k, m, bitmap);
            prop_assert_eq!(la, lb, "probe {} charged different lines", k);
        }
        // The recovery discriminator reuses the same word-wise machinery.
        prop_assert_eq!(swar.max_key::<FixedKey>(), scalar.max_key::<FixedKey>());
    }

    #[test]
    fn scalar_probe_trees_agree(
        ops in proptest::collection::vec(op_strategy(), 50..250),
        wbuf in prop_oneof![Just(0usize), Just(8usize)],
    ) {
        use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        use std::sync::Arc;

        // The swar_probe=false fallback (scalar byte loop, sentinels
        // disabled) must keep identical map semantics on both tree
        // variants; the default-on path is covered by all_trees_agree.
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let mut t = fptree_suite::core::FPTree::create(
                pool,
                small(TreeConfig::fptree())
                    .with_swar_probe(false)
                    .with_wbuf_entries(wbuf),
                ROOT_SLOT,
            );
            check(&format!("fptree-scalar-wbuf{wbuf}"), &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
            t.check_consistency().unwrap();
        }
        {
            let pool = Arc::new(PmemPool::create(PoolOptions::direct(64 << 20)).unwrap());
            let t = fptree_suite::core::ConcurrentFPTree::create(
                pool,
                small(TreeConfig::fptree_concurrent())
                    .with_swar_probe(false)
                    .with_wbuf_entries(wbuf),
                ROOT_SLOT,
            );
            check(&format!("fptree-c-scalar-wbuf{wbuf}"), &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(t.insert(&k, v)),
                Call::Update(k, v) => Resp::Bool(t.update(&k, v)),
                Call::Remove(k) => Resp::Bool(t.remove(&k)),
                Call::Get(k) => Resp::Val(t.get(&k)),
                Call::Range(lo, hi) => Resp::Scan(Some(t.range(&lo, &hi))),
                Call::ScanAll => Resp::Scan(Some(t.scan(..).collect())),
            });
            t.check_consistency().unwrap();
        }
    }

    #[test]
    fn var_key_trees_agree(ops in proptest::collection::vec(op_strategy(), 50..150)) {
        use fptree_suite::pmem::{PmemPool, PoolOptions, ROOT_SLOT};
        use std::sync::Arc;
        // Zero-padded keys: byte order equals numeric order, so var-key
        // range output maps back onto the u64 oracle.
        let key = |k: u64| format!("key:{k:06}").into_bytes();
        let unkey = |k: &[u8]| -> u64 {
            std::str::from_utf8(&k[4..]).unwrap().parse().unwrap()
        };
        let map_back = |v: Vec<(Vec<u8>, u64)>| -> Vec<(u64, u64)> {
            v.iter().map(|(k, val)| (unkey(k), *val)).collect()
        };

        let pool = Arc::new(PmemPool::create(PoolOptions::direct(128 << 20)).unwrap());
        let mut fp = fptree_suite::core::FPTreeVar::create(
            pool,
            small(TreeConfig::fptree_var()).with_leaf_group_size(2),
            ROOT_SLOT,
        );
        check("fptree-var", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(fp.insert(&key(k), v)),
                Call::Update(k, v) => Resp::Bool(fp.update(&key(k), v)),
                Call::Remove(k) => Resp::Bool(fp.remove(&key(k))),
                Call::Get(k) => Resp::Val(fp.get(&key(k))),
                Call::Range(lo, hi) => {
                    Resp::Scan(Some(map_back(fp.range(&key(lo), &key(hi)))))
                }
                Call::ScanAll => Resp::Scan(Some(map_back(fp.scan(..).collect()))),
            });
        fp.check_consistency().unwrap();

        let pool = Arc::new(PmemPool::create(PoolOptions::direct(128 << 20)).unwrap());
        let mut wb = fptree_suite::baselines::WBTreeVar::create(pool, 4, 4, ROOT_SLOT);
        check("wbtree-var", &ops, |c| match c {
                Call::Insert(k, v) => Resp::Bool(wb.insert(&key(k), v)),
                Call::Update(k, v) => Resp::Bool(wb.update(&key(k), v)),
                Call::Remove(k) => Resp::Bool(wb.remove(&key(k))),
                Call::Get(k) => Resp::Val(wb.get(&key(k))),
                Call::Range(lo, hi) => {
                    Resp::Scan(Some(map_back(wb.range(&key(lo), &key(hi)))))
                }
                Call::ScanAll => {
                    Resp::Scan(Some(map_back(wb.scan_from(&key(0), usize::MAX))))
                }
            });
        wb.check_consistency().unwrap();
    }
}
