//! Umbrella crate for the FPTree reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can use a
//! single dependency. See the README for the full map.

pub use fptree_baselines as baselines;
pub use fptree_core as core;
pub use fptree_htm as htm;
pub use fptree_kvcache as kvcache;
pub use fptree_pmem as pmem;
pub use fptree_tatp as tatp;
